package engine

import (
	"testing"

	"fastmatch/internal/histogram"
)

func TestKRangeThroughEngine(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 6, 40)
	e := New(tbl)
	params := testParams()
	params.K = 0
	params.KRange.KMin = 2
	params.KRange.KMax = 7
	res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: FastMatch, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) < 2 || len(res.TopK) > 7 {
		t.Fatalf("KRange |M| = %d", len(res.TopK))
	}
	// Scan with KRange returns KMax candidates.
	scan, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: Scan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.TopK) != 7 {
		t.Fatalf("Scan KRange |M| = %d, want KMax=7", len(scan.TopK))
	}
}

func TestEpsilonReconstructThroughEngine(t *testing.T) {
	tbl := testDataset(t, 60_000, 15, 6, 41)
	e := New(tbl)
	params := testParams()
	params.Epsilon = 0.2
	params.EpsilonReconstruct = 0.08
	res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: FastMatch, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each returned histogram must be within ε₂ of its exact counterpart.
	for _, m := range res.TopK {
		exact, err := e.ResolveTarget(baseQuery(), Target{Candidate: m.Label})
		if err != nil {
			t.Fatal(err)
		}
		if d := histogram.L1(m.Histogram, exact); d >= 0.08 {
			t.Errorf("candidate %q reconstruction error %g ≥ ε₂", m.Label, d)
		}
	}
}

func TestL2MetricThroughEngine(t *testing.T) {
	tbl := testDataset(t, 40_000, 12, 6, 42)
	e := New(tbl)
	params := testParams()
	params.Metric = histogram.MetricL2
	params.Epsilon = 0.08
	res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: FastMatch, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: Scan,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Separation check under L2.
	boundary := truth.TopK[len(truth.TopK)-1].Distance
	for _, m := range res.TopK {
		exact, err := e.ResolveTarget(baseQuery(), Target{Candidate: m.Label})
		if err != nil {
			t.Fatal(err)
		}
		target, _ := e.ResolveTarget(baseQuery(), Target{Uniform: true})
		if d := histogram.L2(exact, target); d-boundary >= params.Epsilon {
			t.Errorf("L2 separation violated for %q: %g vs boundary %g", m.Label, d, boundary)
		}
	}
}

func TestContinuousZViaBinnedDictionary(t *testing.T) {
	// Appendix A.1.6: continuous candidate attributes are binned at a
	// finest granularity which then induces coarser candidate sets. The
	// engine sees the binned column like any categorical column; this test
	// verifies the binner-coarsening contract end to end by building both
	// granularities and comparing candidate block sets.
	tbl := testDataset(t, 10_000, 12, 6, 43)
	e := New(tbl)
	idx, err := e.Index("Z")
	if err != nil {
		t.Fatal(err)
	}
	// Coarse candidate = union of fine candidates: the block set of a
	// 2-way merge equals the OR of the fine bitsets.
	fine0, err := idx.ValueBitset(0)
	if err != nil {
		t.Fatal(err)
	}
	fine1, err := idx.ValueBitset(1)
	if err != nil {
		t.Fatal(err)
	}
	union := fine0.Clone()
	if err := union.Or(fine1); err != nil {
		t.Fatal(err)
	}
	marked := idx.MarkedUnion([]uint32{0, 1})
	for b := 0; b < idx.NumBlocks(); b++ {
		if union.Get(b) != marked.Get(b) {
			t.Fatalf("coarse candidate block set mismatch at block %d", b)
		}
	}
}

func TestRoundBudgetThroughOptions(t *testing.T) {
	tbl := testDataset(t, 50_000, 15, 6, 44)
	e := New(tbl)
	params := testParams()
	params.RoundBudget = -1 // paper's raw Equation (1)
	res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: ScanMatch, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != params.K {
		t.Fatalf("raw-plan run returned %d matches", len(res.TopK))
	}
}

func TestMaxRoundsParameterThroughEngine(t *testing.T) {
	tbl := testDataset(t, 30_000, 10, 6, 45)
	e := New(tbl)
	params := testParams()
	params.MaxRounds = 1
	// With only one round allowed the run either terminates in one round
	// or errors — both acceptable; it must not hang.
	_, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: FastMatch, Seed: 7,
	})
	if err == nil {
		return
	}
}
