package engine

import (
	"fmt"
	"math"

	"fastmatch/internal/core"
	"fastmatch/internal/histogram"
)

// DefaultOptions returns the paper's default configuration scaled to a
// dataset of totalRows tuples: k=10, ε=0.04, δ=0.01, σ=0.0008,
// lookahead=1024 blocks, FastMatch executor, and a stage-1 sample of
// max(rows/20, 2000) capped at the paper's m = 5·10⁵. Seed is left at
// zero — a fixed seed, not a random one; see the root package's
// DefaultOptions doc for the seeding discussion.
func DefaultOptions(totalRows int) Options {
	m := totalRows / 20
	if m < 2000 {
		m = 2000
	}
	if m > 500_000 {
		m = 500_000
	}
	return Options{
		Params: core.Params{
			K:             10,
			Epsilon:       0.04,
			Delta:         0.01,
			Sigma:         0.0008,
			Stage1Samples: m,
			Metric:        histogram.MetricL1,
		},
		Executor:   FastMatch,
		Lookahead:  1024,
		StartBlock: -1,
	}
}

// InvalidOptionsError reports a nonsensical Options value, naming the
// offending field. It is returned (wrapped or not) by Options.Validate and
// by every Run entry point before any sampling happens, so a malformed
// request can never reach undefined behavior deep in the sampler. Callers
// detect it with errors.As — a serving layer maps it to a 4xx response
// while genuine execution failures stay 5xx.
type InvalidOptionsError struct {
	// Field names the offending Options/Params field, e.g. "Epsilon".
	Field string
	// Reason describes the constraint that failed.
	Reason string
}

// Error implements error.
func (e *InvalidOptionsError) Error() string {
	return fmt.Sprintf("engine: invalid option %s: %s", e.Field, e.Reason)
}

// Validate checks every run-affecting field and returns an
// *InvalidOptionsError naming the first offending one. The zero Options
// value is NOT valid (K and Epsilon are zero); DefaultOptions always is.
func (o Options) Validate() error {
	bad := func(field, format string, args ...any) error {
		return &InvalidOptionsError{Field: field, Reason: fmt.Sprintf(format, args...)}
	}
	p := o.Params
	if p.K < 1 && p.KRange.KMax <= 0 {
		return bad("K", "k must be ≥ 1, got %d", p.K)
	}
	if math.IsNaN(p.Epsilon) || !(p.Epsilon > 0 && p.Epsilon <= 2) {
		return bad("Epsilon", "ε must be in (0, 2], got %g", p.Epsilon)
	}
	if math.IsNaN(p.EpsilonReconstruct) || p.EpsilonReconstruct < 0 || p.EpsilonReconstruct > 2 {
		return bad("EpsilonReconstruct", "ε₂ must be in [0, 2], got %g", p.EpsilonReconstruct)
	}
	if math.IsNaN(p.Delta) || !(p.Delta > 0 && p.Delta < 1) {
		return bad("Delta", "δ must be in (0, 1), got %g", p.Delta)
	}
	if math.IsNaN(p.Sigma) || p.Sigma < 0 || p.Sigma >= 1 {
		return bad("Sigma", "σ must be in [0, 1), got %g", p.Sigma)
	}
	if p.Stage1Samples < 0 {
		return bad("Stage1Samples", "stage-1 sample size must be ≥ 0, got %d", p.Stage1Samples)
	}
	if p.KRange.KMax > 0 && (p.KRange.KMin < 1 || p.KRange.KMin > p.KRange.KMax) {
		return bad("KRange", "invalid k range [%d, %d]", p.KRange.KMin, p.KRange.KMax)
	}
	if p.MaxRounds < 0 {
		return bad("MaxRounds", "round cap must be ≥ 0, got %d", p.MaxRounds)
	}
	switch p.Metric {
	case histogram.MetricL1, histogram.MetricL2:
	default:
		return bad("Metric", "unknown metric %d", int(p.Metric))
	}
	switch o.Executor {
	case Scan, ScanMatch, SyncMatch, FastMatch, ParallelScan:
	default:
		return bad("Executor", "unknown executor %d", int(o.Executor))
	}
	if o.RowBudget < 0 {
		return bad("RowBudget", "row budget must be ≥ 0, got %d", o.RowBudget)
	}
	return nil
}
