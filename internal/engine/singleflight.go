package engine

import (
	"fmt"
	"sync"
)

// buildCache is a concurrency-safe build-once cache with per-key
// singleflight de-duplication: concurrent getters of a missing key block
// on one build instead of each building (bitmap index and density-map
// construction are full table passes — the expensive part of planning).
// Build errors are returned to every waiter but not cached, so a failed
// build is retried on the next get.
type buildCache[V any] struct {
	mu    sync.RWMutex
	done  map[string]V
	calls map[string]*buildCall[V]
}

type buildCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

func newBuildCache[V any]() *buildCache[V] {
	return &buildCache[V]{
		done:  make(map[string]V),
		calls: make(map[string]*buildCall[V]),
	}
}

// get returns the cached value for key, building it with build on a miss.
// At most one build per key runs at a time; other callers wait for it.
func (c *buildCache[V]) get(key string, build func() (V, error)) (V, error) {
	c.mu.RLock()
	if v, ok := c.done[key]; ok {
		c.mu.RUnlock()
		return v, nil
	}
	c.mu.RUnlock()

	c.mu.Lock()
	if v, ok := c.done[key]; ok {
		c.mu.Unlock()
		return v, nil
	}
	if call, ok := c.calls[key]; ok {
		c.mu.Unlock()
		call.wg.Wait()
		return call.val, call.err
	}
	call := &buildCall[V]{}
	call.wg.Add(1)
	c.calls[key] = call
	c.mu.Unlock()

	// A panicking build must still release waiters (with an error) and
	// clear the in-flight entry, or every later get for the key would
	// block forever on wg.Wait; the panic then continues on the leader.
	defer func() {
		if r := recover(); r != nil {
			call.err = fmt.Errorf("engine: build for %q panicked: %v", key, r)
			c.mu.Lock()
			delete(c.calls, key)
			c.mu.Unlock()
			call.wg.Done()
			panic(r)
		}
	}()
	call.val, call.err = build()
	c.mu.Lock()
	if call.err == nil {
		c.done[key] = call.val
	}
	delete(c.calls, key)
	c.mu.Unlock()
	call.wg.Done()
	return call.val, call.err
}
