package engine

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
)

// Skip-equivalence suite: statistics-based block pruning and the
// vectorized scan kernels must never change a result. Every executor, on
// every storage backend, must return byte-identical results (including
// the ranked top-k and partial results) with the knobs on and off — the
// only permitted deltas are the documented IOStats counters
// (BlocksPruned, KernelBlocks, and the lower BlocksRead/TuplesRead that
// pruning buys). A property test closes the loop by re-reading every
// pruned block and proving it holds no qualifying row.

// skipTestTable builds a table engineered so both prune sources fire:
// Z runs in contiguous regions (a predicate over a value covers only its
// region's blocks, so the candidate-union complement is large) and the
// measure M equals the row index (blocks have tight disjoint ranges, so
// a binner over a sub-range proves most blocks out of range).
func skipTestTable(t testing.TB) *colstore.Table {
	t.Helper()
	const (
		rows      = 8192
		blockSize = 64
		zCard     = 8
		xCard     = 8
	)
	zDict := colstore.NewDictionary()
	xDict := colstore.NewDictionary()
	zc := make([]uint32, rows)
	xc := make([]uint32, rows)
	mv := make([]float64, rows)
	for row := 0; row < rows; row++ {
		zc[row] = zDict.Intern(fmt.Sprintf("z%d", row/(rows/zCard)))
		xc[row] = xDict.Intern(fmt.Sprintf("x%d", row%xCard))
		mv[row] = float64(row)
	}
	tbl, err := colstore.NewTable(blockSize, rows,
		[]*colstore.Column{
			colstore.NewColumn("Z", zDict, zc),
			colstore.NewColumn("X", xDict, xc),
		},
		[]*colstore.MeasureColumn{colstore.NewMeasureColumn("M", mv)})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// skipTestBackends returns the same data behind all three storage
// backends.
func skipTestBackends(t testing.TB, tbl *colstore.Table) map[string]*Engine {
	t.Helper()
	return map[string]*Engine{
		"inmem":  New(tbl),
		"mmap":   New(mmapTwin(t, tbl)),
		"ingest": New(ingestTwin(t, tbl)),
	}
}

// predQuery compiles a predicate-candidate query against one engine (the
// density maps price blocks for that engine's backend).
func predQuery(t testing.TB, eng *Engine, x []string, xMeasure string, bins *colstore.Binner, values ...string) Query {
	t.Helper()
	dm, err := eng.Density("Z")
	if err != nil {
		t.Fatal(err)
	}
	col, err := eng.Source().ColumnByName("Z")
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]bitmap.Predicate, len(values))
	for i, v := range values {
		code, ok := col.Dictionary().Code(v)
		if !ok {
			t.Fatalf("no code for %q", v)
		}
		preds[i] = &bitmap.ValuePred{Column: "Z", Code: code, DM: dm}
	}
	return Query{CandidatePreds: preds, X: x, XMeasure: xMeasure, XBins: bins}
}

// subRangeBinner bins [1024, 3072) in 4 bins — rows outside bin to no
// group, and blocks wholly outside are provably prunable.
func subRangeBinner(t testing.TB) *colstore.Binner {
	t.Helper()
	b, err := colstore.NewBinner([]float64{1024, 1536, 2048, 2560, 3072})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// skipQueries enumerates the pruning-triggering query shapes against one
// engine. Every returned query must produce a non-empty skipAll mask on
// a stats-carrying backend.
func skipQueries(t testing.TB, eng *Engine) map[string]Query {
	t.Helper()
	return map[string]Query{
		// Candidate-side pruning: two region predicates cover 32 of 128
		// blocks, so 96 are outside the candidate union.
		"pred-cands": predQuery(t, eng, []string{"X"}, "", nil, "z0", "z3"),
		// Group-side pruning: the binner spans rows [1024, 3072), so
		// blocks entirely below or above are out of range.
		"binned-measure": {Z: "Z", XMeasure: "M", XBins: subRangeBinner(t)},
		// Both prune sources at once.
		"pred-and-binned": predQuery(t, eng, nil, "M", subRangeBinner(t), "z1", "z5"),
	}
}

// canonicalResultNoIO is canonicalResult with IOStats zeroed as well:
// the comparison form for runs that differ only in the documented I/O
// counter deltas (pruning and kernel knobs).
func canonicalResultNoIO(t testing.TB, res *Result) string {
	t.Helper()
	c := *res
	c.Duration = 0
	c.IO = IOStats{}
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSkipOnOffByteIdentical(t *testing.T) {
	tbl := skipTestTable(t)
	for backend, eng := range skipTestBackends(t, tbl) {
		for qname, q := range skipQueries(t, eng) {
			for _, exec := range allExecutors() {
				t.Run(fmt.Sprintf("%s/%s/%s", backend, qname, exec), func(t *testing.T) {
					combos := []struct {
						name           string
						noSkip, noKern bool
					}{
						{"skip+kern", false, false},
						{"skip-only", false, true},
						{"kern-only", true, false},
						{"neither", true, true},
					}
					results := make([]*Result, len(combos))
					for i, c := range combos {
						opts := equivOptions(exec, eng.Source().NumBlocks())
						opts.DisableBlockSkip = c.noSkip
						opts.DisableScanKernels = c.noKern
						res, err := eng.Run(q, Target{Uniform: true}, opts)
						if err != nil {
							t.Fatalf("%s: %v", c.name, err)
						}
						results[i] = res
					}
					want := canonicalResultNoIO(t, results[len(combos)-1]) // scalar full-scan reference
					for i, c := range combos {
						if got := canonicalResultNoIO(t, results[i]); got != want {
							t.Fatalf("%s diverges from scalar full scan:\n%s\nvs\n%s", c.name, got, want)
						}
					}
					skipOn, skipOff := results[0], results[3]
					if skipOn.IO.BlocksPruned == 0 {
						t.Fatal("pruning query pruned no blocks with skipping enabled")
					}
					if skipOff.IO.BlocksPruned != 0 {
						t.Fatalf("DisableBlockSkip still pruned %d blocks", skipOff.IO.BlocksPruned)
					}
					if skipOn.IO.TuplesRead >= skipOff.IO.TuplesRead {
						t.Fatalf("pruning read no fewer tuples: %d vs %d", skipOn.IO.TuplesRead, skipOff.IO.TuplesRead)
					}
					if (exec == Scan || exec == ParallelScan) && skipOn.IO.KernelBlocks == 0 {
						t.Fatal("exact scan took no kernel blocks with kernels enabled")
					}
					if skipOff.IO.KernelBlocks != 0 {
						t.Fatalf("DisableScanKernels still took %d kernel blocks", skipOff.IO.KernelBlocks)
					}
				})
			}
		}
	}
}

// TestSkipMasksPruneProvablyEmptyBlocks re-reads every block the planner
// marked prunable and asserts the statistics told the truth: group-side
// prunes contain no row mapping to any group, candidate-side prunes no
// row matching any predicate.
func TestSkipMasksPruneProvablyEmptyBlocks(t *testing.T) {
	tbl := skipTestTable(t)
	for backend, eng := range skipTestBackends(t, tbl) {
		for qname, q := range skipQueries(t, eng) {
			t.Run(fmt.Sprintf("%s/%s", backend, qname), func(t *testing.T) {
				p, err := eng.Prepare(q)
				if err != nil {
					t.Fatal(err)
				}
				if p.skipAll == nil {
					t.Fatal("pruning query built no skip mask")
				}
				src := eng.Source()
				pruned := 0
				for b := 0; b < src.NumBlocks(); b++ {
					if !p.skipAll.Get(b) {
						continue
					}
					pruned++
					grpPruned := p.skipGrp != nil && p.skipGrp.Get(b)
					lo, hi := src.BlockSpan(b)
					var buf []int
					for row := lo; row < hi; row++ {
						if grpPruned {
							if g := p.grp.groupOf(row); g >= 0 {
								t.Fatalf("block %d group-pruned but row %d maps to group %d", b, row, g)
							}
							continue
						}
						// Candidate-side prune: no predicate may match.
						if buf = p.multi.candidatesOf(row, buf[:0]); len(buf) > 0 {
							t.Fatalf("block %d candidate-pruned but row %d matches candidate %d", b, row, buf[0])
						}
					}
				}
				if pruned == 0 {
					t.Fatal("skip mask is empty")
				}
			})
		}
	}
}

// TestSkipConcurrentAgreement hammers the pruning path from several
// goroutines per backend (run under -race) and checks every run agrees
// with the pruning-off, kernels-off reference.
func TestSkipConcurrentAgreement(t *testing.T) {
	tbl := skipTestTable(t)
	for backend, eng := range skipTestBackends(t, tbl) {
		for _, exec := range []Executor{Scan, ParallelScan, FastMatch} {
			t.Run(fmt.Sprintf("%s/%s", backend, exec), func(t *testing.T) {
				q := predQuery(t, eng, nil, "M", subRangeBinner(t), "z1", "z5")
				refOpts := equivOptions(exec, eng.Source().NumBlocks())
				refOpts.DisableBlockSkip = true
				refOpts.DisableScanKernels = true
				ref, err := eng.Run(q, Target{Uniform: true}, refOpts)
				if err != nil {
					t.Fatal(err)
				}
				want := canonicalResultNoIO(t, ref)
				var wg sync.WaitGroup
				errs := make(chan error, 8)
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						res, err := eng.Run(q, Target{Uniform: true}, equivOptions(exec, eng.Source().NumBlocks()))
						if err != nil {
							errs <- err
							return
						}
						if got := canonicalResultNoIO(t, res); got != want {
							errs <- fmt.Errorf("concurrent pruned run diverged from reference")
						}
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
			})
		}
	}
}
