package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"fastmatch/internal/obs/trace"
)

// Trace equivalence suite: attaching a trace to a run must be invisible
// to its answer. Every executor, on every storage backend, must return a
// byte-identical Result (including IOStats — the observer only reads the
// counters) with tracing on and off, and the span tree's per-span IO must
// sum exactly to the run's Result.IO. The second property is what makes
// traces trustworthy for debugging: no I/O the run performed is missing
// from the tree, none is double-counted.

func traceOptions(exec Executor, nb int) Options {
	return equivOptions(exec, nb)
}

func TestTraceByteIdenticalAndIOSums(t *testing.T) {
	tbl := skipTestTable(t)
	for backend, eng := range skipTestBackends(t, tbl) {
		for qname, q := range skipQueries(t, eng) {
			for _, exec := range allExecutors() {
				t.Run(fmt.Sprintf("%s/%s/%s", backend, qname, exec), func(t *testing.T) {
					opts := traceOptions(exec, eng.Source().NumBlocks())
					plain, err := eng.Run(q, Target{Uniform: true}, opts)
					if err != nil {
						t.Fatal(err)
					}
					tr := trace.New("test-query")
					opts.Trace = tr
					traced, err := eng.Run(q, Target{Uniform: true}, opts)
					if err != nil {
						t.Fatal(err)
					}
					tr.End()
					if got, want := canonicalResult(t, traced), canonicalResult(t, plain); got != want {
						t.Fatalf("traced run diverges from untraced:\n%s\nvs\n%s", got, want)
					}
					snap := tr.Snapshot()
					if got, want := snap.SumIO(), traceIO(traced.IO); got != want {
						t.Fatalf("span IO sum %+v != result IO %+v", got, want)
					}
				})
			}
		}
	}
}

// TestTraceSpanShape pins the documented tree: a "run" root carrying the
// executor attribute, phase children for the sampling executors
// (stage1, stage2.roundN, stage3), one worker child per scan worker, and
// plan/groups/candidates/skip_masks spans from PrepareTraced.
func TestTraceSpanShape(t *testing.T) {
	tbl := skipTestTable(t)
	eng := New(tbl)
	q := skipQueries(t, eng)["pred-cands"]

	t.Run("plan", func(t *testing.T) {
		tr := trace.New("plan-trace")
		if _, err := eng.PrepareTraced(q, tr); err != nil {
			t.Fatal(err)
		}
		tr.End()
		snap := tr.Snapshot()
		plan := snap.Find("plan")
		if plan == nil {
			t.Fatalf("no plan span in %+v", snap.Spans)
		}
		for _, child := range []string{"groups", "candidates", "skip_masks"} {
			if snap.Find(child) == nil {
				t.Fatalf("plan span missing %q child", child)
			}
		}
	})

	run := func(t *testing.T, exec Executor, workers int) trace.Snapshot {
		t.Helper()
		opts := traceOptions(exec, tbl.NumBlocks())
		opts.Workers = workers
		tr := trace.New("shape")
		opts.Trace = tr
		if _, err := eng.Run(q, Target{Uniform: true}, opts); err != nil {
			t.Fatal(err)
		}
		tr.End()
		return tr.Snapshot()
	}

	t.Run("run-root", func(t *testing.T) {
		for _, exec := range allExecutors() {
			snap := run(t, exec, 4)
			rs := snap.Find("run")
			if rs == nil {
				t.Fatalf("%s: no run span", exec)
			}
			if got := rs.Attrs["executor"]; got != exec.String() {
				t.Fatalf("%s: executor attr = %v", exec, got)
			}
			if snap.Find("resolve_target") == nil {
				t.Fatalf("%s: no resolve_target span", exec)
			}
			if len(rs.Children) == 0 {
				t.Fatalf("%s: run span has no children", exec)
			}
		}
	})

	t.Run("scan-workers", func(t *testing.T) {
		snap := run(t, ParallelScan, 3)
		for w := 0; w < 3; w++ {
			sp := snap.Find(fmt.Sprintf("worker%d", w))
			if sp == nil {
				t.Fatalf("no worker%d span", w)
			}
			if sp.IO == nil {
				t.Fatalf("worker%d span carries no IO", w)
			}
			if _, ok := sp.Attrs["blocks"]; !ok {
				t.Fatalf("worker%d span has no blocks attr", w)
			}
		}
	})

	t.Run("sampler-phases", func(t *testing.T) {
		// The binned-measure query keeps all 8 Z values in play, so the
		// samplers need stage-2 rounds to separate them.
		bq := skipQueries(t, eng)["binned-measure"]
		for _, exec := range []Executor{ScanMatch, SyncMatch, FastMatch} {
			opts := traceOptions(exec, tbl.NumBlocks())
			// A small stage-1 draw can't separate 8 live candidates at a
			// tight epsilon, so stage 2 must run rounds.
			opts.Params.Stage1Samples = 256
			opts.Params.Epsilon = 0.02
			tr := trace.New("phases")
			opts.Trace = tr
			res, err := eng.Run(bq, Target{Uniform: true}, opts)
			if err != nil {
				t.Fatal(err)
			}
			tr.End()
			snap := tr.Snapshot()
			if snap.Find("stage1") == nil {
				t.Fatalf("%s: no stage1 span", exec)
			}
			rs := snap.Find("run")
			rounds := 0
			for i := range rs.Children {
				if strings.HasPrefix(rs.Children[i].Name, "stage2.round") {
					rounds++
				}
			}
			if rounds != res.Stats.Rounds {
				t.Fatalf("%s: %d stage2 round spans, result reports %d rounds (children %+v)",
					exec, rounds, res.Stats.Rounds, rs.Children)
			}
			if res.Stats.Rounds == 0 {
				t.Fatalf("%s: query converged without stage-2 rounds; pick a harder query", exec)
			}
		}
	})
}

// TestTraceInterruptedRunStillSums cancels a run mid-flight and checks
// the salvage path: the partial result's IO must still equal the span
// tree's sum (the residual lands in the closing "tail" span).
func TestTraceInterruptedRunStillSums(t *testing.T) {
	tbl := skipTestTable(t)
	eng := New(tbl)
	q := skipQueries(t, eng)["pred-cands"]
	plan, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	opts := traceOptions(FastMatch, tbl.NumBlocks())
	opts.RowBudget = 512 // interrupt long before exhaustion
	tr := trace.New("interrupted")
	opts.Trace = tr
	res, err := plan.RunContext(context.Background(), Target{Uniform: true}, opts)
	if res == nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("MaxBlocks run was not partial; raise the table size or lower the budget")
	}
	tr.End()
	if got, want := tr.Snapshot().SumIO(), traceIO(res.IO); got != want {
		t.Fatalf("interrupted span IO sum %+v != result IO %+v", got, want)
	}
}
