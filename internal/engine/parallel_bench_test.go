package engine

import (
	"fmt"
	"testing"
)

// BenchmarkParallelSampling measures the adaptive sampling executors
// (stage-1 uniform pass + stage-2 hypothesis-testing rounds) across
// worker counts. Results are byte-identical for any worker count by
// construction (see parallel_equiv_test.go), so the only thing at stake
// here is wall-clock: workers=1 must not regress against the serial
// baseline, and workers>1 may only help on real multi-core hardware
// (see BENCH_sampler_parallel.json for the recorded baseline and the
// single-CPU-container caveat).
func BenchmarkParallelSampling(b *testing.B) {
	tbl := testDataset(b, 400_000, 20, 8, 5)
	eng := New(tbl)
	plan, err := eng.Prepare(baseQuery())
	if err != nil {
		b.Fatal(err)
	}
	target, err := plan.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, exec := range []Executor{ScanMatch, SyncMatch, FastMatch} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", exec, workers), func(b *testing.B) {
				opts := equivOptions(exec, tbl.NumBlocks())
				opts.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := plan.RunWithTarget(target, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
