package engine

import (
	"fastmatch/internal/core"
)

// QualityReport is the engine-level answer-quality report: core.Quality
// with candidate labels resolved. It is attached to Result.Quality when
// Options.Quality is set on a sampling-executor run; serving layers
// surface it next to (never inside) the serialized result, so result
// bytes stay identical whether or not quality was requested.
type QualityReport struct {
	// Rounds is the number of stage-2 refinement rounds the run used.
	Rounds int `json:"rounds"`
	// FinalGap is the terminal observed separation margin τ_(k+1) − τ_(k);
	// FinalSlack its distance from the ε threshold (FinalGap − ε).
	FinalGap   float64 `json:"final_gap"`
	FinalSlack float64 `json:"final_slack"`
	// Churn is the total top-k membership churn across emissions.
	Churn int `json:"churn"`
	// PrunedCandidates counts stage-1 rare-candidate prunes.
	PrunedCandidates int `json:"pruned_candidates,omitempty"`
	// Matches carries per-match estimate quality, aligned with
	// Result.TopK.
	Matches []MatchQuality `json:"matches,omitempty"`
	// Termination is "guarantee", "exact", or "truncated" (see
	// core.Quality.Termination); GuaranteeMet and Truncated are the
	// boolean views of it.
	Termination  string `json:"termination"`
	GuaranteeMet bool   `json:"guarantee_met"`
	Truncated    bool   `json:"truncated,omitempty"`
}

// MatchQuality is one returned match's estimate quality.
type MatchQuality struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
	// Distance is the estimated distance; CI the (1−δ) confidence-interval
	// half-width around it (clamped to the metric's diameter).
	Distance float64 `json:"distance"`
	CI       float64 `json:"ci"`
	// Samples is the evidence behind the estimate; UnseenGroups the
	// histogram groups still without a single sample.
	Samples      int64 `json:"samples"`
	UnseenGroups int   `json:"unseen_groups,omitempty"`
}

// ProgressQuality is the per-frame convergence telemetry attached to
// Progress when Options.Quality is set: how wide the observed separation
// margin is relative to ε, and how stable the ranking is. Per-candidate
// confidence intervals ride on ProgressMatch.CI.
type ProgressQuality struct {
	Gap              float64 `json:"gap"`
	Slack            float64 `json:"slack"`
	Churn            int     `json:"churn"`
	PrunedCandidates int     `json:"pruned_candidates,omitempty"`
}

// qualityReport converts the core report, resolving candidate labels.
func qualityReport(q *core.Quality, label func(int) string) *QualityReport {
	if q == nil {
		return nil
	}
	r := &QualityReport{
		Rounds:           q.Rounds,
		FinalGap:         q.FinalGap,
		FinalSlack:       q.FinalSlack,
		Churn:            q.Churn,
		PrunedCandidates: q.PrunedCandidates,
		Termination:      q.Termination,
		GuaranteeMet:     q.GuaranteeMet,
		Truncated:        q.Truncated,
	}
	r.Matches = make([]MatchQuality, len(q.Matches))
	for i, m := range q.Matches {
		r.Matches[i] = MatchQuality{
			ID:           m.ID,
			Label:        label(m.ID),
			Distance:     m.Distance,
			CI:           m.CI,
			Samples:      m.Samples,
			UnseenGroups: m.UnseenGroups,
		}
	}
	return r
}
