package engine

import (
	"errors"
	"math"
	"testing"

	"fastmatch/internal/histogram"
)

func validOptions() Options {
	return Options{Params: testParams(), Executor: FastMatch, Lookahead: 64, StartBlock: -1}
}

func TestOptionsValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Options)
		field string
	}{
		{"zero K", func(o *Options) { o.Params.K = 0 }, "K"},
		{"negative K", func(o *Options) { o.Params.K = -3 }, "K"},
		{"zero epsilon", func(o *Options) { o.Params.Epsilon = 0 }, "Epsilon"},
		{"negative epsilon", func(o *Options) { o.Params.Epsilon = -0.1 }, "Epsilon"},
		{"NaN epsilon", func(o *Options) { o.Params.Epsilon = math.NaN() }, "Epsilon"},
		{"huge epsilon", func(o *Options) { o.Params.Epsilon = 3 }, "Epsilon"},
		{"delta zero", func(o *Options) { o.Params.Delta = 0 }, "Delta"},
		{"delta one", func(o *Options) { o.Params.Delta = 1 }, "Delta"},
		{"delta NaN", func(o *Options) { o.Params.Delta = math.NaN() }, "Delta"},
		{"sigma negative", func(o *Options) { o.Params.Sigma = -0.01 }, "Sigma"},
		{"sigma one", func(o *Options) { o.Params.Sigma = 1 }, "Sigma"},
		{"negative stage1", func(o *Options) { o.Params.Stage1Samples = -1 }, "Stage1Samples"},
		{"bad krange", func(o *Options) { o.Params.KRange.KMin, o.Params.KRange.KMax = 5, 2 }, "KRange"},
		{"negative rounds", func(o *Options) { o.Params.MaxRounds = -1 }, "MaxRounds"},
		{"unknown metric", func(o *Options) { o.Params.Metric = histogram.Metric(99) }, "Metric"},
		{"unknown executor", func(o *Options) { o.Executor = Executor(42) }, "Executor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mut(&o)
			err := o.Validate()
			var ioe *InvalidOptionsError
			if !errors.As(err, &ioe) {
				t.Fatalf("want *InvalidOptionsError, got %v", err)
			}
			if ioe.Field != tc.field {
				t.Fatalf("want field %q, got %q (%v)", tc.field, ioe.Field, err)
			}
		})
	}
}

func TestOptionsValidateAcceptsDefaults(t *testing.T) {
	if err := validOptions().Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestRunRejectsInvalidOptionsBeforeSampling(t *testing.T) {
	tbl := testDataset(t, 2_000, 8, 5, 1)
	eng := New(tbl)
	p, err := eng.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	opts := validOptions()
	opts.Params.Epsilon = -1
	var ioe *InvalidOptionsError
	if _, err := p.Run(Target{Uniform: true}, opts); !errors.As(err, &ioe) {
		t.Fatalf("Plan.Run: want *InvalidOptionsError, got %v", err)
	}
	if _, err := eng.Run(baseQuery(), Target{Uniform: true}, opts); !errors.As(err, &ioe) {
		t.Fatalf("Engine.Run: want *InvalidOptionsError, got %v", err)
	}
	// The exact scan path must validate too.
	opts = validOptions()
	opts.Executor = Scan
	opts.Params.K = 0
	if _, err := p.Run(Target{Uniform: true}, opts); !errors.As(err, &ioe) {
		t.Fatalf("Scan path: want *InvalidOptionsError, got %v", err)
	}
}

func TestQueryFingerprint(t *testing.T) {
	a := Query{Z: "z", X: []string{"x1", "x2"}}
	b := Query{Z: "z", X: []string{"x1", "x2"}}
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := b.Fingerprint()
	if fa != fb {
		t.Fatalf("identical queries fingerprint differently:\n%s\n%s", fa, fb)
	}
	// Field-boundary collisions must not happen: the same strings split
	// differently across Z/X are different queries.
	c := Query{Z: "z", X: []string{"x1x2"}}
	fc, _ := c.Fingerprint()
	if fc == fa {
		t.Fatal("distinct queries share a fingerprint")
	}
	d := Query{Z: "z", X: []string{"x1"}, KnownCandidates: []string{"x2"}}
	fd, _ := d.Fingerprint()
	if fd == fa {
		t.Fatal("known-candidates query collides with plain query")
	}
	if _, err := (Query{Z: "z", X: []string{"x"}, Filter: func(int) bool { return true }}).Fingerprint(); err == nil {
		t.Fatal("Filter query must not be fingerprintable")
	}
}

func TestOptionsFingerprintDistinguishesRuns(t *testing.T) {
	a := validOptions()
	b := validOptions()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical options fingerprint differently")
	}
	b.Seed = 7
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seed change not reflected in fingerprint")
	}
	c := validOptions()
	c.Executor = Scan
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("executor change not reflected in fingerprint")
	}
}

func TestTargetFingerprint(t *testing.T) {
	u := (Target{Uniform: true}).Fingerprint()
	cand := (Target{Candidate: "greece"}).Fingerprint()
	counts := (Target{Counts: []float64{1, 2, 3}}).Fingerprint()
	if u == cand || u == counts || cand == counts {
		t.Fatal("distinct targets share fingerprints")
	}
	if (Target{Counts: []float64{1, 2, 3}}).Fingerprint() != counts {
		t.Fatal("identical counts targets fingerprint differently")
	}
	if (Target{Counts: []float64{1, 2, 4}}).Fingerprint() == counts {
		t.Fatal("different counts share a fingerprint")
	}
	// Fingerprint precedence must track ResolveTarget precedence: with
	// both candidate and uniform set, Uniform wins resolution, so the
	// fingerprint must match the uniform one — not the candidate one.
	both := (Target{Candidate: "greece", Uniform: true}).Fingerprint()
	if both != u {
		t.Fatal("candidate+uniform target must fingerprint as uniform (ResolveTarget precedence)")
	}
	if both == cand {
		t.Fatal("candidate+uniform target must not collide with candidate-only fingerprint")
	}
}
