package engine

import (
	"testing"

	"fastmatch/internal/bitmap"
)

func TestCursorContinuesAcrossStages(t *testing.T) {
	// Stage 1 then stage-2-style sampling must consume disjoint blocks:
	// total drawn never exceeds the table, and the consumed set grows
	// monotonically.
	bs, _ := newTestSampler(t, FastMatch, 20_000, 50)
	b1, err := bs.Stage1(2000)
	if err != nil {
		t.Fatal(err)
	}
	read1 := bs.Stats().BlocksRead
	b2, err := bs.SampleUntil(map[int]int{0: 200, 3: 100})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Stats().BlocksRead <= read1 && b2.Drawn > 0 {
		t.Fatal("second phase drew tuples without reading blocks")
	}
	if b1.Drawn+b2.Drawn > 20_000 {
		t.Fatalf("phases overlap: %d + %d tuples", b1.Drawn, b2.Drawn)
	}
}

func TestWrapAroundFromLateStart(t *testing.T) {
	// Starting near the end of the block space must wrap and still meet
	// needs, for every executor.
	for _, exec := range []Executor{ScanMatch, SyncMatch, FastMatch} {
		t.Run(exec.String(), func(t *testing.T) {
			tbl := testDataset(t, 20_000, 10, 6, 51)
			e := New(tbl)
			cand, grp, err := e.plan(baseQuery())
			if err != nil {
				t.Fatal(err)
			}
			start := tbl.NumBlocks() - 3
			bs := newBlockSampler(tbl, cand, grp, nil, exec, 16, start, nil)
			batch, err := bs.SampleUntil(map[int]int{0: 500})
			if err != nil {
				t.Fatal(err)
			}
			if batch.Counts[0] < 500 && !batch.IsExact(0) {
				t.Fatalf("wrap-around failed to meet need: %d", batch.Counts[0])
			}
			if bs.Stats().Wraps == 0 && exec != FastMatch {
				t.Fatal("no wrap recorded despite late start")
			}
		})
	}
}

func TestLookaheadWindowCrossesWrap(t *testing.T) {
	// A lookahead window larger than the remaining tail must mark both
	// segments (the wrap-split path in runLookahead).
	tbl := testDataset(t, 5_000, 8, 6, 52)
	e := New(tbl)
	cand, grp, err := e.plan(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	nb := tbl.NumBlocks()
	bs := newBlockSampler(tbl, cand, grp, nil, FastMatch, nb, nb-2, nil) // window spans the wrap
	batch, err := bs.SampleUntil(map[int]int{1: 100})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Counts[1] < 100 && !batch.IsExact(1) {
		t.Fatalf("wrap-spanning window failed: %d", batch.Counts[1])
	}
}

func TestIndexCompressionStats(t *testing.T) {
	// The TAXI-like Location index must compress well: most values touch
	// few blocks, so zero runs dominate.
	tbl := testDataset(t, 50_000, 200, 6, 53)
	idx, err := bitmap.Build(tbl, "Z")
	if err != nil {
		t.Fatal(err)
	}
	cs := idx.CompressionStats()
	if cs.DenseBytes == 0 || cs.CompressedBytes == 0 {
		t.Fatal("empty compression stats")
	}
	if cs.Ratio() <= 0 {
		t.Fatalf("invalid ratio %g", cs.Ratio())
	}
	// With 200 moderately skewed candidates over ~400 blocks of 128, rare
	// values have sparse bitsets; expect at least some compression.
	t.Logf("dense=%dB compressed=%dB ratio=%.2f maxRuns=%d",
		cs.DenseBytes, cs.CompressedBytes, cs.Ratio(), cs.MaxRuns)
}

func TestEngineSequentialQueryReuse(t *testing.T) {
	// One engine must serve several different queries back to back with
	// cached indexes and no cross-talk.
	tbl := testDataset(t, 30_000, 12, 6, 54)
	e := New(tbl)
	q1 := Query{Z: "Z", X: []string{"X"}}
	q2 := Query{Z: "W", X: []string{"X"}}
	params := testParams()
	r1, err := e.Run(q1, Target{Uniform: true}, Options{Params: params, Executor: FastMatch, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(q2, Target{Uniform: true}, Options{Params: params, Executor: FastMatch, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r1again, err := e.Run(q1, Target{Uniform: true}, Options{Params: params, Executor: Scan})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.TopK) == 0 || len(r2.TopK) == 0 || len(r1again.TopK) == 0 {
		t.Fatal("empty results on reuse")
	}
	// The W query's candidates come from W's domain (4 values).
	for _, m := range r2.TopK {
		if m.Label[:2] != "W_" {
			t.Fatalf("cross-talk: %q in W query results", m.Label)
		}
	}
}

func TestScanIgnoresStartBlock(t *testing.T) {
	tbl := testDataset(t, 10_000, 8, 6, 55)
	e := New(tbl)
	params := testParams()
	a, err := e.Run(baseQuery(), Target{Uniform: true}, Options{Params: params, Executor: Scan, StartBlock: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(baseQuery(), Target{Uniform: true}, Options{Params: params, Executor: Scan, StartBlock: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TopK {
		if a.TopK[i].Label != b.TopK[i].Label {
			t.Fatal("Scan results depend on start block")
		}
	}
}
