package engine

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/core"
	"fastmatch/internal/histogram"
)

// Distributed shard segments
//
// A cluster coordinator (internal/cluster) executes one logical sampling
// run whose block space is the concatenation of N row-range shards, each
// served by an independent fastmatchd process. The coordinator drives
// core.RunObserved itself; its sampler chains the global cursor walk
// through per-shard *segments* — each segment is one stateless call into
// this file, carrying the walk's committed state in (consumed bitmap,
// cursor, deficits, residual budgets) and returning the updated state
// plus a mergeable core.Batch partial.
//
// Byte-identity with a single node over the concatenated data rests on
// three alignment facts, all enforced elsewhere and assumed here:
//
//   - chunk commits happen at fixed block-index positions (sampler.go),
//     so when every shard's block count is a multiple of ChunkBlocks,
//     a segment handoff commits exactly where the single-node walk
//     would;
//   - FastMatch lookahead tiles are anchored to block indices
//     (sampler.go), so shard boundaries that are also tile boundaries
//     preserve the marking schedule;
//   - candidate and group IDs are dictionary-driven, so shards built
//     with shared full dictionaries (datagen -shards) expose identical
//     candidate domains, group counts, and labels.
//
// Segments are idempotent: re-running a segment from the same request
// state returns the same response, so a coordinator may retry a failed
// call safely.

// SegmentKind selects what a shard segment executes.
type SegmentKind string

const (
	// SegStage1 reads sequentially until the residual stage-1 target is
	// met (no AnyActive).
	SegStage1 SegmentKind = "stage1"
	// SegRound runs one shard-local slice of a stage-2/stage-3 deficit
	// round under the executor's block policy.
	SegRound SegmentKind = "round"
	// SegScan runs the exact-pass executor over the whole shard.
	SegScan SegmentKind = "scan"
	// SegTarget resolves one candidate's exact local histogram.
	SegTarget SegmentKind = "target"
)

// ChunkBlocks returns the chunk-commit granularity (in blocks) the
// sampling planner uses for the given block size. Shard files whose
// block counts are multiples of this value hand off segments exactly at
// commit boundaries; datagen -shards aligns shard sizes with it.
func ChunkBlocks(blockSize int) int {
	if blockSize <= 0 {
		return samplerChunkMinBlocks
	}
	c := samplerChunkRows / blockSize
	if c < samplerChunkMinBlocks {
		c = samplerChunkMinBlocks
	}
	if c > samplerChunkMaxBlocks {
		c = samplerChunkMaxBlocks
	}
	return c
}

// ShardMeta describes a plan's shape on one shard. The coordinator
// cross-checks metas (candidate/group domains must agree across shards)
// and uses the per-candidate Absent flags as the initial local-exhaustion
// state for exactness inference.
type ShardMeta struct {
	Rows       int    `json:"rows"`
	Blocks     int    `json:"blocks"`
	BlockSize  int    `json:"block_size"`
	Candidates int    `json:"candidates"`
	Groups     int    `json:"groups"`
	ChunkBlk   int    `json:"chunk_blocks"`
	Generation uint64 `json:"generation,omitempty"`
	// Labels / GroupLabels name candidates and groups by id; the
	// coordinator requires them to be identical on every shard.
	Labels      []string `json:"labels"`
	GroupLabels []string `json:"group_labels"`
	// Absent flags candidates provably absent from this shard (their
	// block bitsets are empty): locally exhausted before any sampling.
	Absent []bool `json:"absent,omitempty"`
}

// ShardMeta reports the plan's local shape for coordinator validation.
func (p *Plan) ShardMeta() ShardMeta {
	n := p.cand.numCandidates()
	m := ShardMeta{
		Rows:        p.engine.src.NumRows(),
		Blocks:      p.engine.src.NumBlocks(),
		BlockSize:   p.engine.src.BlockSize(),
		Candidates:  n,
		Groups:      p.grp.groups(),
		ChunkBlk:    ChunkBlocks(p.engine.src.BlockSize()),
		GroupLabels: groupLabels(p.grp),
	}
	m.Labels = make([]string, n)
	m.Absent = make([]bool, n)
	for i := 0; i < n; i++ {
		m.Labels[i] = p.cand.labelOf(i)
		if cb := p.cand.candidateBlocks(i); cb != nil && cb.Count() == 0 {
			m.Absent[i] = true
		}
	}
	return m
}

// ShardSegment is one stateless shard-local slice of a global run. The
// coordinator owns all cross-segment state and threads it through here.
type ShardSegment struct {
	Kind SegmentKind `json:"kind"`

	// Run knobs. They must match the single-node options the coordinated
	// run is equivalent to; Workers is throughput-only as everywhere else.
	Executor           Executor `json:"executor"`
	Lookahead          int      `json:"lookahead,omitempty"`
	Workers            int      `json:"workers,omitempty"`
	DisableBlockSkip   bool     `json:"disable_block_skip,omitempty"`
	DisableScanKernels bool     `json:"disable_scan_kernels,omitempty"`

	// Sampling walk state (SegStage1 / SegRound).
	Cursor int `json:"cursor"`
	// Consumed is the shard-local consumed bitmap as raw words,
	// little-endian bit order (bitmap.Bitset words).
	Consumed      []uint64 `json:"consumed,omitempty"`
	ConsumedCount int      `json:"consumed_count"`
	// Visits bounds this pass's remaining cursor visits globally;
	// GlobalBlocks and OthersConsumed feed the global all-consumed test.
	Visits         int `json:"visits"`
	GlobalBlocks   int `json:"global_blocks"`
	OthersConsumed int `json:"others_consumed"`

	// Stage1Need is the residual stage-1 drawn target (SegStage1).
	Stage1Need int `json:"stage1_need,omitempty"`
	// Deficits are the residual per-candidate sample demands (SegRound).
	Deficits map[int]int64 `json:"deficits,omitempty"`

	// Residual termination state: RowBudget ≤ 0 means unlimited (the
	// coordinator never forwards an exhausted budget — it synthesizes the
	// stop itself), Deadline zero means none.
	RowBudget int64     `json:"row_budget,omitempty"`
	Deadline  time.Time `json:"deadline,omitempty"`

	// TargetCandidate is the candidate id to resolve (SegTarget).
	TargetCandidate int `json:"target_candidate,omitempty"`
}

// Segment stop reasons, the wire form of the guard's typed errors.
const (
	SegStopBudget   = "budget"
	SegStopDeadline = "deadline"
	SegStopCanceled = "canceled"
)

// ShardSegmentResult carries a segment's mergeable partial plus the
// updated walk state the coordinator threads into the next segment.
type ShardSegmentResult struct {
	// Batch is the core.EncodeBatch partial: fresh samples for sampling
	// segments; for SegScan/SegTarget the local exact histograms with
	// Drawn holding the rows charged to the budget guard.
	Batch []byte  `json:"batch"`
	IO    IOStats `json:"io"`
	// Visited counts cursor visits consumed (sampling segments).
	Visited       int      `json:"visited"`
	Cursor        int      `json:"cursor"`
	Consumed      []uint64 `json:"consumed,omitempty"`
	ConsumedCount int      `json:"consumed_count"`
	// Deficits are the demands still unmet after this segment (SegRound).
	Deficits map[int]int64 `json:"deficits,omitempty"`
	// LocalExhausted flags candidates with no unconsumed local blocks
	// left (every sampling segment); the coordinator ANDs the freshest
	// flags across shards for exactness inference.
	LocalExhausted []bool `json:"local_exhausted,omitempty"`
	// Stopped is "" for a completed segment, else a SegStop* reason.
	Stopped string `json:"stopped,omitempty"`
}

// StopError reconstructs the guard error a stop reason stands for, using
// the run's global budget accounting so the error text matches what a
// single-node run would have produced. Returns nil for a completed
// segment.
func (r *ShardSegmentResult) StopError(budget, read int64) error {
	switch r.Stopped {
	case "":
		return nil
	case SegStopBudget:
		return BudgetStopError(budget, read)
	case SegStopDeadline:
		return CanceledStopError(context.DeadlineExceeded)
	default:
		return CanceledStopError(context.Canceled)
	}
}

// RunShardSegment executes one shard segment against this plan. It is
// stateless with respect to the plan (safe for concurrent segments) and
// idempotent with respect to the request.
func (p *Plan) RunShardSegment(ctx context.Context, req *ShardSegment) (*ShardSegmentResult, error) {
	switch req.Kind {
	case SegStage1, SegRound:
		return p.runSampleSegment(ctx, req)
	case SegScan:
		return p.runScanSegment(ctx, req)
	case SegTarget:
		return p.runTargetSegment(ctx, req)
	default:
		return nil, fmt.Errorf("engine: unknown segment kind %q", req.Kind)
	}
}

// segGuard builds the run guard for a segment from the residual
// termination state.
func segGuard(ctx context.Context, req *ShardSegment) *runGuard {
	return newRunGuard(ctx, Options{Deadline: req.Deadline, RowBudget: req.RowBudget})
}

func (p *Plan) runSampleSegment(ctx context.Context, req *ShardSegment) (*ShardSegmentResult, error) {
	nb := p.engine.src.NumBlocks()
	if req.Cursor < 0 || req.Cursor > nb {
		return nil, fmt.Errorf("engine: segment cursor %d outside [0, %d]", req.Cursor, nb)
	}
	bs := newBlockSampler(p.engine.src, p.cand, p.grp, p.query.Filter,
		req.Executor, req.Lookahead, req.Cursor, segGuard(ctx, req))
	bs.cursor = req.Cursor // undo newBlockSampler's wrap-around normalization
	bs.workers = req.Workers
	if bs.workers <= 0 {
		bs.workers = runtime.GOMAXPROCS(0)
	}
	if !req.DisableBlockSkip {
		bs.skipAll = p.skipAll
		bs.skipGrp = p.skipGrp
	}
	if !req.DisableScanKernels {
		bs.initFastPath()
	}
	bs.seg = true
	bs.segVisits = req.Visits
	bs.segGlobal = req.GlobalBlocks
	bs.segOthers = req.OthersConsumed
	bs.consumed = bitsetFromWords(nb, req.Consumed)
	bs.consCnt = req.ConsumedCount

	batch := bs.newBatch()
	stage1Need := -1
	if req.Kind == SegStage1 {
		stage1Need = req.Stage1Need
	} else {
		bs.unmet = 0
		for id, d := range req.Deficits {
			if id < 0 || id >= bs.cand.numCandidates() {
				return nil, fmt.Errorf("engine: segment deficit for unknown candidate %d", id)
			}
			if d > 0 {
				bs.deficit[id] = d
				bs.unmet++
			}
		}
		bs.refreshActive()
	}
	visited, stopErr := bs.runRound(batch, stage1Need)

	res := &ShardSegmentResult{
		Batch:         core.EncodeBatch(batch),
		IO:            bs.Stats(),
		Visited:       visited,
		Cursor:        bs.cursor,
		Consumed:      bitsetWords(bs.consumed),
		ConsumedCount: bs.consCnt,
		Stopped:       stopReason(stopErr),
	}
	if req.Kind == SegRound {
		res.Deficits = make(map[int]int64)
		for id, d := range bs.deficit {
			if d > 0 {
				res.Deficits[id] = d
			}
		}
	}
	// Local-exhaustion flags for every sampling segment (stage 1 consumes
	// blocks too): the coordinator ANDs the freshest flags per shard, and
	// a shard's flags only change when one of its own segments runs.
	n := bs.cand.numCandidates()
	res.LocalExhausted = make([]bool, n)
	for i := 0; i < n; i++ {
		res.LocalExhausted[i] = bs.candidateExhausted(i)
	}
	return res, nil
}

func (p *Plan) runScanSegment(ctx context.Context, req *ShardSegment) (*ShardSegmentResult, error) {
	ex := p.newScanExec(req.Workers)
	ex.guard = segGuard(ctx, req)
	if !req.DisableBlockSkip {
		ex.skip = p.skipAll
	}
	ex.kernels = !req.DisableScanKernels
	hists, io, rows, stopErr := ex.run(nil, -1)
	return &ShardSegmentResult{
		Batch:   core.EncodeBatch(scanBatch(hists, rows)),
		IO:      io,
		Stopped: stopReason(stopErr),
	}, nil
}

func (p *Plan) runTargetSegment(ctx context.Context, req *ShardSegment) (*ShardSegmentResult, error) {
	id := req.TargetCandidate
	if id < 0 || id >= p.cand.numCandidates() {
		return nil, fmt.Errorf("engine: segment target candidate %d out of range", id)
	}
	workers := req.Workers
	if p.query.Filter != nil {
		workers = 1 // mirror resolveTarget: a Filter closure may be stateful
	}
	ex := p.newScanExec(workers)
	ex.guard = segGuard(ctx, req)
	hists, _, rows, stopErr := ex.run(p.cand.candidateBlocks(id), id)
	batch := &core.Batch{
		Drawn:  rows,
		Counts: make([]int64, len(hists)),
		Hists:  make([]*histogram.Histogram, len(hists)),
	}
	batch.Counts[id] = int64(hists[id].Total())
	batch.Hists[id] = hists[id]
	return &ShardSegmentResult{
		Batch:   core.EncodeBatch(batch),
		Stopped: stopReason(stopErr),
	}, nil
}

// scanBatch packs an exact pass's histograms into the mergeable Batch
// envelope: Drawn carries the guard-charged rows (pruned blocks
// included), Counts the per-candidate totals.
func scanBatch(hists []*histogram.Histogram, rows int64) *core.Batch {
	b := &core.Batch{Drawn: rows, Counts: make([]int64, len(hists)), Hists: hists}
	for i, h := range hists {
		b.Counts[i] = int64(h.Total())
	}
	return b
}

func stopReason(err error) string {
	switch {
	case err == nil:
		return ""
	case isBudget(err):
		return SegStopBudget
	case errors.Is(err, context.DeadlineExceeded):
		return SegStopDeadline
	default:
		return SegStopCanceled
	}
}

// bitsetWords snapshots a bitset's backing words for the wire.
func bitsetWords(b *bitmap.Bitset) []uint64 {
	out := make([]uint64, b.NumWords())
	for w := range out {
		out[w] = b.Word(w)
	}
	return out
}

// bitsetFromWords rebuilds an n-bit bitset from wire words; bits beyond
// n are dropped.
func bitsetFromWords(n int, words []uint64) *bitmap.Bitset {
	bs := bitmap.NewBitset(n)
	for w, word := range words {
		for word != 0 {
			j := bits.TrailingZeros64(word)
			if i := w*64 + j; i < n {
				bs.Set(i)
			}
			word &^= 1 << uint(j)
		}
	}
	return bs
}
