package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// Quality equivalence suite: requesting answer-quality telemetry must be
// invisible to the answer itself. Every sampling executor, on every
// storage backend, must return a byte-identical Result (including
// IOStats) with Options.Quality on and off — quality collection reads
// the estimates HistSim already maintains, it never steers sampling.

func TestQualityByteIdenticalAcrossExecutorsAndBackends(t *testing.T) {
	tbl := skipTestTable(t)
	for backend, eng := range skipTestBackends(t, tbl) {
		for qname, q := range skipQueries(t, eng) {
			for _, exec := range samplingExecutors() {
				t.Run(fmt.Sprintf("%s/%s/%s", backend, qname, exec), func(t *testing.T) {
					opts := equivOptions(exec, eng.Source().NumBlocks())
					plain, err := eng.Run(q, Target{Uniform: true}, opts)
					if err != nil {
						t.Fatal(err)
					}
					opts.Quality = true
					collected, err := eng.Run(q, Target{Uniform: true}, opts)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := canonicalResult(t, collected), canonicalResult(t, plain); got != want {
						t.Fatalf("quality-collecting run diverges:\n%s\nvs\n%s", got, want)
					}
					if plain.Quality != nil {
						t.Fatal("plain run grew a Quality report")
					}
					qr := collected.Quality
					if qr == nil {
						t.Fatal("Options.Quality run returned no Result.Quality")
					}
					if qr.Truncated || !qr.GuaranteeMet {
						t.Fatalf("completed run reported %+v", qr)
					}
					if len(qr.Matches) != len(collected.TopK) {
						t.Fatalf("%d quality matches for %d TopK", len(qr.Matches), len(collected.TopK))
					}
					for i, m := range qr.Matches {
						if m.Label != collected.TopK[i].Label || m.Distance != collected.TopK[i].Distance {
							t.Fatalf("quality match %d (%s, %g) misaligned with TopK (%s, %g)",
								i, m.Label, m.Distance, collected.TopK[i].Label, collected.TopK[i].Distance)
						}
						if !collected.Exact && (m.CI <= 0 || math.IsInf(m.CI, 1)) {
							t.Fatalf("match %d: CI=%g", i, m.CI)
						}
					}
				})
			}
		}
	}
}

func TestQualityProgressFramesCarryTelemetry(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	opts := equivOptions(FastMatch, tbl.NumBlocks())
	opts.Quality = true
	var frames []Progress
	opts.OnProgress = func(p Progress) { frames = append(frames, p) }
	res, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no progress frames")
	}
	for i, fr := range frames {
		if fr.Quality == nil {
			t.Fatalf("frame %d (%s) has no quality telemetry", i, fr.Phase)
		}
		if got, want := fr.Quality.Slack, fr.Quality.Gap-opts.Params.Epsilon; math.Abs(got-want) > 1e-12 {
			t.Fatalf("frame %d: slack %g != gap-ε %g", i, got, want)
		}
		for j, m := range fr.TopK {
			if m.CI <= 0 {
				t.Fatalf("frame %d match %d (%s): CI=%g, want > 0", i, j, m.Label, m.CI)
			}
		}
	}
	if res.Quality == nil {
		t.Fatal("no final quality report")
	}
	// Without Options.Quality the frames must stay lean.
	opts.Quality = false
	frames = nil
	if _, err := eng.Run(baseQuery(), Target{Uniform: true}, opts); err != nil {
		t.Fatal(err)
	}
	for i, fr := range frames {
		if fr.Quality != nil {
			t.Fatalf("frame %d carries quality telemetry without Options.Quality", i)
		}
		for j, m := range fr.TopK {
			if m.CI != 0 {
				t.Fatalf("frame %d match %d: CI=%g without Options.Quality", i, j, m.CI)
			}
		}
	}
}

// TestQualityTruncatedRunFlagged cuts a run off with a row budget and a
// deadline and checks the report says so: Termination "truncated",
// GuaranteeMet false — the flag the serving layer's guarantee-violation
// accounting keys off.
func TestQualityTruncatedRunFlagged(t *testing.T) {
	tbl := skipTestTable(t)
	eng := New(tbl)
	cases := map[string]struct {
		query func(*testing.T) Query
		tweak func(*Query, *Options)
	}{
		"row-budget": {
			query: func(t *testing.T) Query { return skipQueries(t, eng)["pred-cands"] },
			tweak: func(q *Query, o *Options) { o.RowBudget = 512 },
		},
		// The deadline must fire mid-run, after stage 1 landed samples.
		// The query matters: every z-value is a candidate, so no stage-1
		// block is zone-map prunable and the sleeping row filter really
		// runs (4 blocks × 64 rows × 100µs ≫ 5ms). Planned reads are
		// never abandoned, so stage 1 completes in full and the next
		// sampler call's opening guard check deterministically fires.
		"deadline": {
			query: func(*testing.T) Query { return baseQuery() },
			tweak: func(q *Query, o *Options) {
				q.Filter = func(int) bool { time.Sleep(100 * time.Microsecond); return true }
				o.Params.Stage1Samples = 256
				o.Deadline = time.Now().Add(5 * time.Millisecond)
				o.Workers = 1
			},
		},
	}
	for name, tc := range cases {
		tweak := tc.tweak
		t.Run(name, func(t *testing.T) {
			q := tc.query(t)
			opts := equivOptions(FastMatch, tbl.NumBlocks())
			opts.Quality = true
			tweak(&q, &opts)
			res, err := eng.Run(q, Target{Uniform: true}, opts)
			if err == nil || res == nil {
				t.Fatalf("res=%v err=%v, want partial result + error", res, err)
			}
			if !res.Partial {
				t.Fatal("truncated run not flagged Partial")
			}
			qr := res.Quality
			if qr == nil {
				t.Fatal("truncated run returned no quality report")
			}
			if !qr.Truncated || qr.GuaranteeMet || qr.Termination != "truncated" {
				t.Fatalf("truncated run reported %+v", qr)
			}
			// A truncated answer claimed no guarantee: auditing it must be
			// refused rather than counted as violations.
			plan, err := eng.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			target, err := plan.ResolveTarget(Target{Uniform: true}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := AuditRun(context.Background(), plan, target, res, opts); err == nil {
				t.Fatal("AuditRun accepted a partial answer")
			}
		})
	}
}

// TestAuditMatchesGroundTruth computes the exact ranking independently in
// the test and checks AuditRun's precision@k, rank displacement, and
// per-candidate errors against it exactly (seeded deterministic run).
func TestAuditMatchesGroundTruth(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	plan, err := eng.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	target, err := plan.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := equivOptions(FastMatch, tbl.NumBlocks())
	opts.Quality = true
	approx, err := plan.RunWithTarget(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := len(approx.TopK)
	if k == 0 {
		t.Fatal("no approximate answer to audit")
	}

	// Ground truth: exact full ranking, computed the same way a client
	// would — Scan executor, every candidate ranked.
	exOpts := Options{Params: testParams(), Executor: Scan}
	exOpts.Params.K = plan.NumCandidates()
	exOpts.Params.Sigma = 0
	exact, err := plan.RunWithTarget(target, exOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact {
		t.Fatal("reference scan not exact")
	}
	exactRank := make(map[string]int)
	exactDist := make(map[string]float64)
	for i, m := range exact.TopK {
		exactRank[m.Label] = i
		exactDist[m.Label] = m.Distance
	}
	hits, violations := 0, 0
	maxDisp, maxErr := 0, 0.0
	for i, m := range approx.TopK {
		if r, ok := exactRank[m.Label]; ok && r < k {
			hits++
		}
		if exactDist[m.Label] > exact.TopK[k-1].Distance+opts.Params.Epsilon {
			violations++
		}
		if d := abs(exactRank[m.Label] - i); d > maxDisp {
			maxDisp = d
		}
		if e := math.Abs(m.Distance - exactDist[m.Label]); e > maxErr {
			maxErr = e
		}
	}

	audit, err := AuditRun(context.Background(), plan, target, approx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := audit.PrecisionAtK, float64(hits)/float64(k); got != want {
		t.Fatalf("PrecisionAtK=%v, ground truth %v", got, want)
	}
	if audit.GuaranteeViolations != violations {
		t.Fatalf("GuaranteeViolations=%d, ground truth %d", audit.GuaranteeViolations, violations)
	}
	if audit.MaxDisplacement != maxDisp {
		t.Fatalf("MaxDisplacement=%d, ground truth %d", audit.MaxDisplacement, maxDisp)
	}
	if audit.MaxAbsError != maxErr {
		t.Fatalf("MaxAbsError=%v, ground truth %v", audit.MaxAbsError, maxErr)
	}
	if audit.K != k || audit.Epsilon != opts.Params.Epsilon {
		t.Fatalf("audit header %+v", audit)
	}
	if audit.ExactKthDistance != exact.TopK[k-1].Distance {
		t.Fatalf("ExactKthDistance=%v, want %v", audit.ExactKthDistance, exact.TopK[k-1].Distance)
	}
	if len(audit.Candidates) != k {
		t.Fatalf("%d audit candidates for k=%d", len(audit.Candidates), k)
	}
	for i, c := range audit.Candidates {
		m := approx.TopK[i]
		if c.Label != m.Label || c.ApproxRank != i || c.ApproxDistance != m.Distance {
			t.Fatalf("candidate %d misaligned: %+v vs match %+v", i, c, m)
		}
		if c.ExactRank != exactRank[m.Label] || c.ExactDistance != exactDist[m.Label] {
			t.Fatalf("candidate %d exact side: %+v, want rank %d dist %v",
				i, c, exactRank[m.Label], exactDist[m.Label])
		}
	}
	// The audit's precision claim must be internally consistent with the
	// paper's contract on a completed run: violations can only come from
	// candidates outside the exact top-k.
	if audit.GuaranteeViolations > k-hits {
		t.Fatalf("%d violations but only %d misses", audit.GuaranteeViolations, k-hits)
	}

	// Determinism: a second audit of the same run is identical.
	audit2, err := AuditRun(context.Background(), plan, target, approx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if audit.PrecisionAtK != audit2.PrecisionAtK || audit.MeanAbsError != audit2.MeanAbsError {
		t.Fatal("audit is not deterministic")
	}
}

func TestAuditRefusesEmptyAnswer(t *testing.T) {
	tbl := testDataset(t, 8_000, 10, 6, 3)
	eng := New(tbl)
	plan, err := eng.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	target, err := plan.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AuditRun(context.Background(), plan, target, nil, equivOptions(FastMatch, 1)); err == nil {
		t.Fatal("nil result audited")
	}
	if _, err := AuditRun(context.Background(), plan, target, &Result{}, equivOptions(FastMatch, 1)); err == nil {
		t.Fatal("empty result audited")
	}
}

func TestAuditHonorsContext(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	plan, err := eng.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	target, err := plan.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := equivOptions(FastMatch, tbl.NumBlocks())
	approx, err := plan.RunWithTarget(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AuditRun(ctx, plan, target, approx, opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled audit returned %v, want ErrCanceled", err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
