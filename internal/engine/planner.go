package engine

import (
	"fmt"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/histogram"
	"fastmatch/internal/obs/trace"
)

// Plan is a resolved query: the candidate and group mappers bound to the
// engine's table and indexes. Planning resolves columns, builds (or fetches
// cached) bitmap indexes, and compiles predicate matchers once; the
// resulting Plan is immutable and safe for concurrent use, so callers
// issuing the same query shape repeatedly — or from many goroutines —
// should Prepare once and reuse the Plan across runs.
type Plan struct {
	engine *Engine
	query  Query
	cand   candidateMapper
	multi  *predicateCandidates // non-nil iff candidates may overlap
	grp    groupMapper
	// skipAll / skipGrp mark blocks the storage backend's block statistics
	// prove free of qualifying rows; executors consume them virtually
	// (rows charged to guards and totals, nothing read) so results stay
	// byte-identical to a pruning-off run. skipGrp holds only the
	// group-side (measure-range) prunes; skipAll additionally folds in the
	// candidate-side prunes (complement of the predicate candidates' block
	// union), so skipGrp ⊆ skipAll. The split exists because SyncMatch and
	// FastMatch already skip non-candidate blocks via AnyActive without
	// charging samples — pruning those virtually would change Drawn and
	// break byte-identity — so they apply only skipGrp, after the
	// AnyActive check. Both are built once at Prepare from
	// option-independent inputs, keeping Plans cache- and
	// concurrency-safe; Options.DisableBlockSkip gates their use per run.
	skipAll *bitmap.Bitset
	skipGrp *bitmap.Bitset
}

// Prepare resolves a query into a reusable Plan. Run, RunWithTarget, and
// ResolveTarget are one-shot wrappers around Prepare; prepare explicitly to
// amortize planning across repeated runs.
func (e *Engine) Prepare(q Query) (*Plan, error) { return e.PrepareTraced(q, nil) }

// PrepareTraced is Prepare recording the planning phases — group and
// candidate resolution (including bitmap-index builds on cold columns)
// and skip-mask construction — as spans under a "plan" root in tr. A nil
// tr makes it identical to Prepare.
func (e *Engine) PrepareTraced(q Query, tr *trace.Trace) (*Plan, error) {
	if q.Measure != "" {
		return nil, fmt.Errorf("engine: SUM queries run over a MeasureBiasedView table; build one with MeasureBiasedView and query it with COUNT semantics")
	}
	psp := tr.Start("plan")
	defer psp.End()
	sp := psp.Child("groups")
	grp, err := e.planGroups(q)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = psp.Child("candidates")
	cand, err := e.planCandidates(q)
	sp.End()
	if err != nil {
		return nil, err
	}
	p := &Plan{engine: e, query: q, cand: cand, grp: grp}
	if pc, ok := cand.(*predicateCandidates); ok {
		p.multi = pc
	}
	sp = psp.Child("skip_masks")
	p.buildSkipMasks()
	sp.End()
	return p, nil
}

// blockStatsOf surfaces a backend's block statistics, or nil when the
// backend (or, for a wrapper like ThrottledReader, its inner reader)
// carries none.
func blockStatsOf(src colstore.Reader) colstore.BlockStats {
	if br, ok := src.(colstore.BlockStatsReader); ok {
		return br.BlockStats()
	}
	return nil
}

// buildSkipMasks derives the plan's block-skip masks from the backend's
// block statistics and the plan shape. Group-side: a binned-measure query
// skips blocks whose measure range lies entirely outside the binner's
// edge span (Bin assigns no group to such values, so no row in the block
// can count). Candidate-side: a predicate-candidate query skips blocks
// outside the union of all candidates' possible blocks (no predicate can
// match there). Both prunes are sound by construction — a skipped block
// provably contributes to no histogram — which the equivalence suite
// verifies by re-reading pruned blocks.
func (p *Plan) buildSkipMasks() {
	nb := p.engine.src.NumBlocks()
	if nb == 0 {
		return
	}
	var grpMask *bitmap.Bitset
	if bg, ok := p.grp.(binnedGroups); ok {
		if stats := blockStatsOf(p.engine.src); stats != nil {
			edges := bg.binner.Edges()
			if len(edges) >= 2 {
				name := bg.m.MeasureName()
				for b := 0; b < nb; b++ {
					lo, hi, ok := stats.MeasureRange(name, b)
					if ok && (hi < edges[0] || lo > edges[len(edges)-1]) {
						if grpMask == nil {
							grpMask = bitmap.NewBitset(nb)
						}
						grpMask.Set(b)
					}
				}
			}
		}
	}
	var candMask *bitmap.Bitset
	if p.multi != nil {
		union := bitmap.NewBitset(nb)
		for _, bs := range p.multi.blocks {
			_ = union.Or(bs) // lengths match by construction
		}
		for b := 0; b < nb; b++ {
			if !union.Get(b) {
				if candMask == nil {
					candMask = bitmap.NewBitset(nb)
				}
				candMask.Set(b)
			}
		}
	}
	p.skipGrp = grpMask
	switch {
	case candMask == nil:
		p.skipAll = grpMask
	case grpMask == nil:
		p.skipAll = candMask
	default:
		all := bitmap.NewBitset(nb)
		_ = all.Or(grpMask)
		_ = all.Or(candMask)
		p.skipAll = all
	}
}

// plan is the internal form of Prepare, kept for call sites that want the
// raw mappers.
func (e *Engine) plan(q Query) (candidateMapper, groupMapper, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, nil, err
	}
	return p.cand, p.grp, nil
}

// planCandidates resolves the candidate mapper: predicate candidates when
// CandidatePreds is set, otherwise the distinct values of the Z column
// backed by its bitmap index.
func (e *Engine) planCandidates(q Query) (candidateMapper, error) {
	if len(q.CandidatePreds) > 0 {
		return newPredicateCandidates(e.src, q.CandidatePreds)
	}
	if q.Z == "" {
		return nil, fmt.Errorf("engine: query needs Z or CandidatePreds")
	}
	col, err := e.src.ColumnByName(q.Z)
	if err != nil {
		return nil, err
	}
	idx, err := e.Index(q.Z)
	if err != nil {
		return nil, err
	}
	return newColumnCandidates(col, e.src.NumRows(), idx, q.KnownCandidates)
}

// planGroups resolves the group mapper: binned measure groups, a single
// categorical column, or the cross product of several.
func (e *Engine) planGroups(q Query) (groupMapper, error) {
	if q.XMeasure != "" {
		if q.XBins == nil {
			return nil, fmt.Errorf("engine: XMeasure %q needs XBins", q.XMeasure)
		}
		m, err := e.src.MeasureByName(q.XMeasure)
		if err != nil {
			return nil, err
		}
		return newBinnedGroups(m, e.src.NumRows(), q.XBins), nil
	}
	if len(q.X) == 0 {
		return nil, fmt.Errorf("engine: query needs X or XMeasure")
	}
	if len(q.X) == 1 {
		col, err := e.src.ColumnByName(q.X[0])
		if err != nil {
			return nil, err
		}
		return newSingleGroups(col, e.src.NumRows()), nil
	}
	cols := make([]colstore.ColumnReader, len(q.X))
	for i, name := range q.X {
		col, err := e.src.ColumnByName(name)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	return newMultiGroups(cols, e.src.NumRows())
}

// Query returns the query this plan resolves.
func (p *Plan) Query() Query { return p.query }

// Groups returns the number of histogram groups the plan produces.
func (p *Plan) Groups() int { return p.grp.groups() }

// NumCandidates returns the number of candidates in the plan's domain.
func (p *Plan) NumCandidates() int { return p.cand.numCandidates() }

// GroupLabels names the histogram groups, aligned with Histogram indices.
func (p *Plan) GroupLabels() []string { return groupLabels(p.grp) }

// ResolveTarget materializes the target histogram under this plan.
// Candidate targets are resolved with an exact parallel scan restricted
// (via the bitmap index) to the blocks containing the candidate; workers
// ≤ 0 selects GOMAXPROCS.
func (p *Plan) ResolveTarget(t Target, workers int) (*histogram.Histogram, error) {
	return p.resolveTarget(t, workers, nil)
}

// resolveTarget is ResolveTarget under an optional run guard: a canceled
// context aborts the candidate-resolution scan with the typed
// termination error (a truncated target would be wrong, not partial).
func (p *Plan) resolveTarget(t Target, workers int, guard *runGuard) (*histogram.Histogram, error) {
	switch {
	case len(t.Counts) > 0:
		if len(t.Counts) != p.grp.groups() {
			return nil, fmt.Errorf("engine: target has %d groups, query produces %d", len(t.Counts), p.grp.groups())
		}
		return histogram.FromCounts(t.Counts), nil
	case t.Uniform:
		counts := make([]float64, p.grp.groups())
		for i := range counts {
			counts[i] = 1
		}
		return histogram.FromCounts(counts), nil
	case t.Candidate != "":
		id := -1
		for i := 0; i < p.cand.numCandidates(); i++ {
			if p.cand.labelOf(i) == t.Candidate {
				id = i
				break
			}
		}
		if id < 0 {
			return nil, fmt.Errorf("engine: target candidate %q not found", t.Candidate)
		}
		if p.query.Filter != nil {
			// A Filter closure written against the pre-planner API may be
			// stateful; only the explicit ParallelScan executor opts into
			// concurrent Filter calls, so resolve filtered targets
			// sequentially.
			workers = 1
		}
		ex := p.newScanExec(workers)
		ex.guard = guard
		return ex.candidateHistogram(id)
	default:
		return nil, fmt.Errorf("engine: empty target specification")
	}
}
