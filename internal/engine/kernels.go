package engine

import "fastmatch/internal/histogram"

// Vectorized grouped-count accumulation kernels for the exact-scan hot
// loop.
//
// The scalar scanRange path pays, per row, two interface dispatches
// (groupOf, candidateOf), a lazy-histogram nil check, and a float64
// histogram update. A kernel instead processes one block's aliased code
// slices in a batch against a flat per-worker int64 accumulator of
// candidates × groups cells, then folds the accumulator into the
// histograms once per range (histogram.AddN). Counts are non-negative
// integers well below 2^53, so n folded at once equals n scalar Adds
// bit-for-bit: results are byte-identical to the scalar path, and
// IOStats.KernelBlocks is the only observable difference.
//
// Kernel shapes mirror the planner's mapper shapes:
//
//   - fused single/single: candidate = Z code, group = X code — one
//     branch-free multiply-add per row (plus the known-candidate remap
//     variant, whose table is total by construction).
//   - multi-column groups: the composite group code is built per block
//     with one strided pass per column into a scratch buffer.
//   - binned measure groups: bins resolved per block into the scratch
//     buffer (-1 = out of range, dropped at accumulation).
//   - predicate candidates: per candidate, the compiled matcher sweeps
//     the block against the precomputed group buffer.
//
// Rows with Filter set take the scalar path: a Filter closure may be
// stateful and its per-row call order is part of the observable
// contract.

// maxKernelCells caps the flat accumulator (candidates × groups) at 32
// MiB of int64 cells; larger shapes fall back to the scalar path, whose
// lazily-allocated histograms handle sparse giants better anyway.
const maxKernelCells = 1 << 22

// scanKernel is one worker's accumulation state. Instances are
// per-scanRange (never shared): the accumulator is written without
// synchronization.
type scanKernel struct {
	groups int
	nCand  int
	acc    []int64 // [candidate*groups + group]

	// Candidate side: exactly one of (zc) / (matchers) is set.
	zc       []uint32             // columnCandidates: Z codes, full column
	remap    []int                // nil = identity; else total, values ≥ 0
	matchers []func(row int) bool // predicateCandidates: compiled matchers

	// Group side: exactly one of (xc) / (multi) / (binned) is set.
	xc     []uint32 // singleGroups: X codes, full column
	multi  *multiGroups
	binned binnedGroups
	hasBin bool

	gbuf []int32 // per-block group scratch; nil on the fused path
}

// newKernel builds a kernel matching the executor's plan shape, or nil
// when no kernel covers it (Filter present, unknown mapper, accumulator
// too large) — the caller then runs the scalar loop.
func (s *scanExec) newKernel() *scanKernel {
	if s.filter != nil {
		return nil
	}
	groups := s.grp.groups()
	nCand := s.cand.numCandidates()
	if groups <= 0 || nCand <= 0 || int64(groups)*int64(nCand) > maxKernelCells {
		return nil
	}
	k := &scanKernel{groups: groups, nCand: nCand}
	switch g := s.grp.(type) {
	case singleGroups:
		k.xc = g.codes
	case *multiGroups:
		k.multi = g
	case binnedGroups:
		k.binned = g
		k.hasBin = true
	default:
		return nil
	}
	if s.multi != nil {
		k.matchers = s.multi.matchers
	} else if cc, ok := s.cand.(*columnCandidates); ok {
		k.zc = cc.codes
		k.remap = cc.remap
	} else {
		return nil
	}
	k.acc = make([]int64, groups*nCand)
	if k.xc == nil || k.matchers != nil {
		k.gbuf = make([]int32, s.blockSize)
	}
	return k
}

// block accumulates rows [lo, hi) — one storage block.
func (k *scanKernel) block(lo, hi int) {
	if k.gbuf == nil {
		// Fused single/single: group and candidate are direct code
		// lookups; no scratch, no branches beyond the remap variant.
		g := k.groups
		if k.remap == nil {
			for row := lo; row < hi; row++ {
				k.acc[int(k.zc[row])*g+int(k.xc[row])]++
			}
		} else {
			for row := lo; row < hi; row++ {
				k.acc[k.remap[k.zc[row]]*g+int(k.xc[row])]++
			}
		}
		return
	}
	gb := k.gbuf[:hi-lo]
	switch {
	case k.xc != nil:
		for i := range gb {
			gb[i] = int32(k.xc[lo+i])
		}
	case k.multi != nil:
		for i := range gb {
			gb[i] = 0
		}
		for ci, codes := range k.multi.codes {
			stride := int32(k.multi.strides[ci])
			for i := range gb {
				gb[i] += int32(codes[lo+i]) * stride
			}
		}
	default:
		for i := range gb {
			if bin, ok := k.binned.binner.Bin(k.binned.values[lo+i]); ok {
				gb[i] = int32(bin)
			} else {
				gb[i] = -1
			}
		}
	}
	g := k.groups
	switch {
	case k.matchers != nil:
		for c, m := range k.matchers {
			base := c * g
			for i, gg := range gb {
				if gg >= 0 && m(lo+i) {
					k.acc[base+int(gg)]++
				}
			}
		}
	case k.remap == nil:
		for i, gg := range gb {
			if gg >= 0 {
				k.acc[int(k.zc[lo+i])*g+int(gg)]++
			}
		}
	default:
		for i, gg := range gb {
			if gg >= 0 {
				k.acc[k.remap[k.zc[lo+i]]*g+int(gg)]++
			}
		}
	}
}

// fold drains the accumulator into the partial's histograms. Histograms
// stay lazily allocated — a candidate with no counted row keeps a nil
// histogram, exactly like the scalar path — and the accumulator is
// zeroed so a second fold is a no-op.
func (k *scanKernel) fold(part *scanPartial, groups int) {
	for id := 0; id < k.nCand; id++ {
		row := k.acc[id*k.groups : (id+1)*k.groups]
		for gg, n := range row {
			if n == 0 {
				continue
			}
			if part.hists[id] == nil {
				part.hists[id] = histogram.New(groups)
			}
			part.hists[id].AddN(gg, float64(n))
			row[gg] = 0
		}
	}
}
