package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/histogram"
	"fastmatch/internal/obs/trace"
)

// scanExec is the exact-pass executor: the full-data baseline the paper
// compares against (§5.2), generalized to N workers sweeping disjoint
// contiguous block ranges with private accumulators that are merged at a
// barrier. With workers == 1 it degenerates to the sequential Scan
// baseline; ParallelScan runs it at Options.Workers (default GOMAXPROCS).
// Because every worker counts a disjoint set of rows and counts are
// integer-valued, the merged histograms — and therefore distances, pruning
// decisions, and the top-k — are identical to the sequential pass
// regardless of worker count.
type scanExec struct {
	src     colstore.Reader
	cand    candidateMapper
	multi   *predicateCandidates // non-nil iff candidates may overlap
	grp     groupMapper
	filter  func(row int) bool
	workers int
	// guard, when non-nil, is consulted once per block so a canceled or
	// budget-capped scan unwinds promptly with partial accumulators.
	guard *runGuard
	// emit, when non-nil, receives an I/O snapshot every
	// scanProgressInterval blocks. It is only set for single-worker
	// scans: parallel workers race, so their interleaving (and thus any
	// frame sequence) would be nondeterministic.
	emit func(io IOStats)
	// skip, when non-nil, marks blocks whose statistics prove no
	// qualifying row; scanRange consumes them virtually (rows charged to
	// guards and totals, nothing read). blockSize/rows are cached so the
	// virtual path never calls BlockSpan — a simulated-latency backend
	// must not sleep for a block the scan skips.
	skip      *bitmap.Bitset
	blockSize int
	rows      int
	// kernels enables the vectorized per-block accumulators; scanRange
	// falls back to the scalar row loop for shapes no kernel covers.
	kernels bool
	// span, when non-nil, is the traced run's parent span: the merge
	// barrier records one child span per worker (its block range, wall
	// time, and IOStats). Nil for untraced runs and target resolution —
	// workers then take no timestamps and pay nothing.
	span *trace.Span
}

// scanPartialTimes is the per-worker wall-clock pair recorded only for
// traced runs.
type scanPartialTimes struct {
	began time.Time
	ended time.Time
}

// scanProgressInterval is how many blocks a sequential scan reads between
// progress emissions.
const scanProgressInterval = 256

// newScanExec binds a scan executor to a plan. Workers ≤ 0 selects
// GOMAXPROCS; the count is further capped at the number of blocks.
func (p *Plan) newScanExec(workers int) *scanExec {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if nb := p.engine.src.NumBlocks(); workers > nb {
		workers = nb
	}
	if workers < 1 {
		workers = 1
	}
	return &scanExec{
		src:       p.engine.src,
		cand:      p.cand,
		multi:     p.multi,
		grp:       p.grp,
		filter:    p.query.Filter,
		workers:   workers,
		blockSize: p.engine.src.BlockSize(),
		rows:      p.engine.src.NumRows(),
	}
}

// scanPartial is one worker's private accumulators.
type scanPartial struct {
	hists []*histogram.Histogram // lazily allocated per candidate
	io    IOStats
	rows  int64
	err   error             // guard termination, if the worker was interrupted
	times *scanPartialTimes // non-nil only for traced runs
}

// partition splits [0, NumBlocks) into s.workers contiguous ranges.
func (s *scanExec) partition() [][2]int {
	nb := s.src.NumBlocks()
	ranges := make([][2]int, 0, s.workers)
	chunk := (nb + s.workers - 1) / s.workers
	for lo := 0; lo < nb; lo += chunk {
		hi := lo + chunk
		if hi > nb {
			hi = nb
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	return ranges
}

// scanRange sweeps blocks [loBlock, hiBlock), restricted to `only` when
// non-nil, recording every row whose candidate passes keep (keep < 0 keeps
// all candidates).
//
// Stats-pruned blocks (s.skip) are consumed virtually: their rows are
// charged to the guard and to part.rows — so budget decisions, σ
// selectivities, and partial results are byte-identical to a pruning-off
// sweep — but the block is never read and TuplesRead stays untouched.
// Progress emission paces on BlocksRead+BlocksPruned so frame positions
// and counts match the pruning-off sweep exactly.
func (s *scanExec) scanRange(loBlock, hiBlock int, only *bitmap.Bitset, keep int) *scanPartial {
	part := &scanPartial{hists: make([]*histogram.Histogram, s.cand.numCandidates())}
	if s.span != nil {
		part.times = &scanPartialTimes{began: time.Now()}
	}
	groups := s.grp.groups() // hoisted out of the per-row loop
	var kern *scanKernel
	if s.kernels && only == nil && keep < 0 {
		kern = s.newKernel() // per-worker accumulator, folded on return
	}
	finish := func() *scanPartial {
		if kern != nil {
			kern.fold(part, groups)
		}
		if part.times != nil {
			part.times.ended = time.Now()
		}
		return part
	}
	var multiBuf []int
	for b := loBlock; b < hiBlock; b++ {
		if err := s.guard.stop(); err != nil {
			part.err = err
			return finish()
		}
		if only != nil && !only.Get(b) {
			continue
		}
		if s.skip != nil && s.skip.Get(b) {
			lo := b * s.blockSize
			hi := lo + s.blockSize
			if hi > s.rows {
				hi = s.rows
			}
			part.io.BlocksSkipped++
			part.io.BlocksPruned++
			part.rows += int64(hi - lo)
			s.guard.addRows(int64(hi - lo))
			if s.emit != nil && (part.io.BlocksRead+part.io.BlocksPruned)%scanProgressInterval == 0 {
				s.emit(part.io)
			}
			continue
		}
		lo, hi := s.src.BlockSpan(b)
		part.io.BlocksRead++
		s.guard.addRows(int64(hi - lo))
		if kern != nil {
			kern.block(lo, hi)
			part.io.TuplesRead += int64(hi - lo)
			part.rows += int64(hi - lo)
			part.io.KernelBlocks++
			if s.emit != nil && (part.io.BlocksRead+part.io.BlocksPruned)%scanProgressInterval == 0 {
				s.emit(part.io)
			}
			continue
		}
		for row := lo; row < hi; row++ {
			part.io.TuplesRead++
			part.rows++
			if s.filter != nil && !s.filter(row) {
				continue
			}
			g := s.grp.groupOf(row)
			if g < 0 {
				continue
			}
			if s.multi != nil {
				// All-matches membership, for the full scan and for the
				// keep-one target path alike: a predicate candidate's true
				// histogram includes every row satisfying it, even rows an
				// earlier overlapping predicate also matches.
				multiBuf = s.multi.candidatesOf(row, multiBuf[:0])
				for _, id := range multiBuf {
					if keep >= 0 && id != keep {
						continue
					}
					part.add(id, g, groups)
				}
				continue
			}
			id := s.cand.candidateOf(row)
			if id < 0 || (keep >= 0 && id != keep) {
				continue
			}
			part.add(id, g, groups)
		}
		if s.emit != nil && (part.io.BlocksRead+part.io.BlocksPruned)%scanProgressInterval == 0 {
			s.emit(part.io)
		}
	}
	return finish()
}

func (p *scanPartial) add(id, g, groups int) {
	if p.hists[id] == nil {
		p.hists[id] = histogram.New(groups)
	}
	p.hists[id].Add(g)
}

// run fans the scan out over the partitioned block ranges and merges the
// per-worker accumulators at the barrier into a complete histogram set.
// When the run's guard fires, every worker unwinds at its next block
// boundary and run returns the merged partial accumulators with the
// termination error — all goroutines are always joined before returning.
func (s *scanExec) run(only *bitmap.Bitset, keep int) ([]*histogram.Histogram, IOStats, int64, error) {
	ranges := s.partition()
	parts := make([]*scanPartial, len(ranges))
	var wg sync.WaitGroup
	for w, r := range ranges {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = s.scanRange(lo, hi, only, keep)
		}(w, r[0], r[1])
	}
	wg.Wait()

	n := s.cand.numCandidates()
	hists := make([]*histogram.Histogram, n)
	for i := range hists {
		hists[i] = histogram.New(s.grp.groups())
	}
	var io IOStats
	var rows int64
	var stopErr error
	for w, part := range parts {
		io.Add(part.io)
		rows += part.rows
		if part.err != nil && stopErr == nil {
			stopErr = part.err
		}
		if s.span != nil && part.times != nil {
			sp := s.span.ChildAt(fmt.Sprintf("worker%d", w), part.times.began)
			sp.SetAttr("blocks", [2]int{ranges[w][0], ranges[w][1]})
			sp.SetIO(traceIO(part.io))
			sp.EndAt(part.times.ended)
		}
		for i, h := range part.hists {
			if h == nil {
				continue
			}
			if err := hists[i].AddHistogram(h); err != nil {
				panic(err) // group counts match by construction
			}
		}
	}
	return hists, io, rows, stopErr
}

// candidateHistogram computes the exact histogram of one candidate,
// restricted (via the bitmap index) to the blocks that contain it. An
// interrupted scan returns the guard's termination error: a truncated
// target histogram is not best-effort-usable, it is wrong.
func (s *scanExec) candidateHistogram(id int) (*histogram.Histogram, error) {
	hists, _, _, err := s.run(s.cand.candidateBlocks(id), id)
	if err != nil {
		return nil, err
	}
	return hists[id], nil
}

// runScan answers the plan exactly: one full pass computing every
// candidate histogram, exact σ pruning, exact top-k. An interrupted pass
// (guard fired) instead returns a best-effort Result — Partial set, no σ
// pruning (selectivities from a truncated pass are biased), candidates
// ranked by their partial histograms — alongside the termination error.
func (p *Plan) runScan(target *histogram.Histogram, opts Options, workers int, guard *runGuard, emit func(io IOStats), span *trace.Span) (*Result, error) {
	params := opts.Params
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ex := p.newScanExec(workers)
	ex.guard = guard
	ex.span = span
	if !opts.DisableBlockSkip {
		ex.skip = p.skipAll
	}
	ex.kernels = !opts.DisableScanKernels
	if ex.workers == 1 {
		ex.emit = emit
	}
	hists, io, totalRows, stopErr := ex.run(nil, -1)
	res := &Result{Exact: stopErr == nil, Partial: stopErr != nil, IO: io}
	res.TopK, res.Pruned = RankExact(target, params, hists, totalRows, stopErr == nil, p.cand.labelOf)
	res.Stats.ChosenK = len(res.TopK)
	res.Stats.PrunedCandidates = len(res.Pruned)
	return res, stopErr
}

// rankExact ranks fully-accumulated per-candidate histograms the way the
// exact pass does: σ pruning only on a complete pass (selectivities from
// a truncated pass are biased), never-reached candidates dropped from a
// partial ranking, k from Params.K or the KRange rule. Shared between
// runScan and the cluster coordinator's scatter-gather Scan path, which
// ranks globally summed shard histograms — keeping it shared is what
// makes the coordinated top-k byte-identical to the single-node one.
func RankExact(target *histogram.Histogram, params core.Params, hists []*histogram.Histogram,
	totalRows int64, complete bool, labelOf func(int) string) (topK []Match, pruned []string) {
	dist := make([]float64, len(hists))
	var keep []int
	for i := range hists {
		if complete && params.Sigma > 0 {
			if sel := hists[i].Total() / float64(totalRows); sel < params.Sigma {
				pruned = append(pruned, labelOf(i))
				continue
			}
		}
		if !complete && hists[i].Total() == 0 {
			// Never-reached candidate: its empty histogram normalizes
			// to uniform, which would rank it as a perfect match for
			// uniform-like targets. A truncated pass ranks only what it
			// saw.
			continue
		}
		dist[i] = params.Metric.Distance(hists[i], target)
		keep = append(keep, i)
	}
	k := params.K
	if params.KRange.KMax > 0 {
		k = params.KRange.KMax
		if k > len(keep) && params.KRange.KMin <= len(keep) {
			k = len(keep)
		}
	}
	for _, rk := range histogram.TopK(dist, keep, k) {
		topK = append(topK, Match{
			ID:        rk.ID,
			Label:     labelOf(rk.ID),
			Distance:  rk.Distance,
			Histogram: hists[rk.ID].Clone(),
		})
	}
	return topK, pruned
}
