package engine

import (
	"context"
	"fmt"
	"math"
	"time"

	"fastmatch/internal/histogram"
)

// Audit quantifies an approximate (sampling-executor) answer against the
// exact one: AuditRun re-executes the same plan and target with the exact
// Scan executor, ranks every candidate, and measures how well the
// approximate top-k matched it. The paper's contract is probabilistic —
// precision ≥ 1−ε at confidence 1−δ — so audits are the only way to
// observe whether the contract holds in practice; serving layers
// shadow-audit a fraction of production queries with this harness.
type Audit struct {
	// K is the audited answer size (len of the approximate TopK).
	K int `json:"k"`
	// Epsilon is the ε the approximate run claimed its guarantee at.
	Epsilon float64 `json:"epsilon"`
	// PrecisionAtK is the strict precision |approx ∩ exact top-k| / k.
	// The paper's guarantee tolerates ε-near misses, so this may dip
	// below 1 without a violation — see GuaranteeViolations.
	PrecisionAtK float64 `json:"precision_at_k"`
	// GuaranteeViolations counts returned candidates whose exact distance
	// exceeds the exact k-th best distance by more than ε — answers the
	// separation guarantee actually forbids (they should occur with
	// probability ≤ δ across runs).
	GuaranteeViolations int `json:"guarantee_violations"`
	// ExactKthDistance is the exact distance of the true k-th best
	// candidate, the reference for the guarantee check.
	ExactKthDistance float64 `json:"exact_kth_distance"`
	// MeanAbsError / MaxAbsError aggregate |approx − exact| distance
	// error over the returned matches.
	MeanAbsError float64 `json:"mean_abs_error"`
	MaxAbsError  float64 `json:"max_abs_error"`
	// MaxDisplacement is the largest |approx rank − exact rank| over the
	// returned matches.
	MaxDisplacement int `json:"max_displacement"`
	// Candidates details every returned match, in approximate-rank order.
	Candidates []AuditCandidate `json:"candidates"`
	// ExactIO and ExactDuration report what the exact reference pass
	// cost — the price of the audit itself.
	ExactIO       IOStats       `json:"exact_io"`
	ExactDuration time.Duration `json:"exact_duration_ns"`
}

// AuditCandidate compares one returned match against the exact ranking.
type AuditCandidate struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
	// ApproxRank/ExactRank are 0-based positions in the approximate and
	// exact rankings.
	ApproxRank int `json:"approx_rank"`
	ExactRank  int `json:"exact_rank"`
	// ApproxDistance/ExactDistance are the estimated and true distances;
	// AbsError their absolute difference.
	ApproxDistance float64 `json:"approx_distance"`
	ExactDistance  float64 `json:"exact_distance"`
	AbsError       float64 `json:"abs_error"`
	// InExactTopK reports membership in the exact top-k (the strict
	// precision numerator); Violation that the candidate breaks the
	// ε-tolerant separation guarantee.
	InExactTopK bool `json:"in_exact_topk"`
	Violation   bool `json:"violation,omitempty"`
}

// AuditRun re-executes the plan and target with the exact Scan executor
// and measures the approximate answer against the full exact ranking:
// strict precision@k, rank displacement, per-candidate distance error,
// and ε-tolerant guarantee violations. opts should be the options the
// approximate run used — its Params (ε, metric) parameterize the audit;
// executor-specific knobs are ignored. Partial approximate answers are
// refused: a truncated run claimed no guarantee, so auditing one would
// count phantom violations.
//
// The exact pass ranks every candidate (no σ pruning, k = |candidates|),
// so it costs a full scan of the qualifying blocks; run audits off the
// request path.
func AuditRun(ctx context.Context, p *Plan, target *histogram.Histogram, approx *Result, opts Options) (*Audit, error) {
	if approx == nil || len(approx.TopK) == 0 {
		return nil, fmt.Errorf("engine: nothing to audit: empty approximate answer")
	}
	if approx.Partial {
		return nil, fmt.Errorf("engine: refusing to audit a partial answer: no guarantee was claimed")
	}
	exOpts := AuditReferenceOptions(opts, p.NumCandidates())
	exact, err := p.RunWithTargetContext(ctx, target, exOpts)
	if err != nil {
		return nil, fmt.Errorf("engine: audit reference scan: %w", err)
	}
	return GradeAudit(approx, exact, opts.Params.Epsilon)
}

// AuditReferenceOptions derives the options for an audit's exact
// reference pass from the approximate run's options: the Scan executor
// ranking every candidate (no σ pruning, k = candidate count, no
// KRange), with the approximate run's metric. Shared by AuditRun and the
// cluster coordinator, whose reference pass is a scatter-gather scan.
func AuditReferenceOptions(opts Options, numCandidates int) Options {
	exOpts := Options{Params: opts.Params, Executor: Scan}
	exOpts.Params.K = numCandidates
	exOpts.Params.KRange.KMin, exOpts.Params.KRange.KMax = 0, 0
	exOpts.Params.Sigma = 0 // the reference must rank every candidate
	exOpts.Params.CollectQuality = false
	return exOpts
}

// GradeAudit measures an approximate answer against an exact reference
// ranking (every candidate ranked, no pruning): strict precision@k, rank
// displacement, per-candidate distance error, and ε-tolerant guarantee
// violations. It is the grading half of AuditRun, shared with the
// cluster coordinator, which produces its exact reference by
// scatter-gather instead of a local scan.
func GradeAudit(approx, exact *Result, epsilon float64) (*Audit, error) {
	k := len(approx.TopK)
	if len(exact.TopK) < k {
		return nil, fmt.Errorf("engine: audit reference ranked %d candidates, approximate answer has %d", len(exact.TopK), k)
	}

	rank := make(map[int]int, len(exact.TopK))
	dist := make(map[int]float64, len(exact.TopK))
	for i, m := range exact.TopK {
		rank[m.ID] = i
		dist[m.ID] = m.Distance
	}
	a := &Audit{
		K:                k,
		Epsilon:          epsilon,
		ExactKthDistance: exact.TopK[k-1].Distance,
		ExactIO:          exact.IO,
		ExactDuration:    exact.Duration,
		Candidates:       make([]AuditCandidate, 0, k),
	}
	hits := 0
	for i, m := range approx.TopK {
		er, ok := rank[m.ID]
		if !ok {
			return nil, fmt.Errorf("engine: audit: candidate %q missing from exact ranking", m.Label)
		}
		ed := dist[m.ID]
		ae := math.Abs(m.Distance - ed)
		disp := er - i
		if disp < 0 {
			disp = -disp
		}
		c := AuditCandidate{
			ID:             m.ID,
			Label:          m.Label,
			ApproxRank:     i,
			ExactRank:      er,
			ApproxDistance: m.Distance,
			ExactDistance:  ed,
			AbsError:       ae,
			InExactTopK:    er < k,
			Violation:      ed > a.ExactKthDistance+a.Epsilon,
		}
		if c.InExactTopK {
			hits++
		}
		if c.Violation {
			a.GuaranteeViolations++
		}
		if disp > a.MaxDisplacement {
			a.MaxDisplacement = disp
		}
		if ae > a.MaxAbsError {
			a.MaxAbsError = ae
		}
		a.MeanAbsError += ae
		a.Candidates = append(a.Candidates, c)
	}
	a.PrecisionAtK = float64(hits) / float64(k)
	a.MeanAbsError /= float64(k)
	return a, nil
}
