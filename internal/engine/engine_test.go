package engine

import (
	"math"
	"testing"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/datagen"
	"fastmatch/internal/histogram"
)

// testDataset builds a small clustered dataset with a Z candidate column
// and an X grouping column.
func testDataset(t testing.TB, rows, zCard, xCard int, seed int64) *colstore.Table {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "t", Rows: rows, Seed: seed, Clusters: 6, BlockSize: 64,
		Columns: []datagen.ColumnSpec{
			{Name: "Z", Cardinality: zCard, Skew: 0.8, ClusterConcentration: 0.5},
			{Name: "X", Cardinality: xCard, Skew: 0.3, ClusterConcentration: 0.5},
			{Name: "W", Cardinality: 4, Skew: 0.2, ClusterConcentration: 1},
		},
		Measures: []string{"M"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Table
}

func testParams() core.Params {
	return core.Params{
		K: 3, Epsilon: 0.10, Delta: 0.05, Sigma: 0.002,
		Stage1Samples: 10_000, Metric: histogram.MetricL1,
	}
}

func baseQuery() Query { return Query{Z: "Z", X: []string{"X"}} }

func TestScanExecutorExact(t *testing.T) {
	tbl := testDataset(t, 30_000, 20, 8, 1)
	e := New(tbl)
	res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: testParams(), Executor: Scan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("Scan must be exact")
	}
	if len(res.TopK) != 3 {
		t.Fatalf("topk size %d", len(res.TopK))
	}
	if res.IO.TuplesRead != int64(tbl.NumRows()) {
		t.Fatalf("Scan read %d of %d tuples", res.IO.TuplesRead, tbl.NumRows())
	}
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Distance < res.TopK[i-1].Distance {
			t.Fatal("topk not sorted")
		}
	}
}

// scanGroundTruth computes exact distances for comparison.
func scanGroundTruth(t *testing.T, e *Engine, q Query, target Target, params core.Params) *Result {
	t.Helper()
	res, err := e.Run(q, target, Options{Params: params, Executor: Scan})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestApproximateExecutorsMatchScan(t *testing.T) {
	tbl := testDataset(t, 60_000, 25, 8, 2)
	for _, exec := range []Executor{ScanMatch, SyncMatch, FastMatch} {
		t.Run(exec.String(), func(t *testing.T) {
			e := New(tbl)
			params := testParams()
			truth := scanGroundTruth(t, e, baseQuery(), Target{Uniform: true}, params)
			res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
				Params: params, Executor: exec, Seed: 7, StartBlock: -1, Lookahead: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.TopK) != params.K {
				t.Fatalf("topk size %d", len(res.TopK))
			}
			// Separation check: every returned candidate must be within ε
			// of the true top-k boundary.
			truthDist := map[string]float64{}
			for _, m := range truth.TopK {
				truthDist[m.Label] = m.Distance
			}
			kthTruth := truth.TopK[len(truth.TopK)-1].Distance
			for _, m := range res.TopK {
				if d, ok := truthDist[m.Label]; ok {
					_ = d
					continue // in the true top-k: always fine
				}
				// Not in true top-k: must not be more than ε worse than
				// the boundary... (it replaced one within ε).
				exactD := exactDistanceOf(t, e, baseQuery(), m.Label, params)
				if exactD-kthTruth >= params.Epsilon {
					t.Errorf("%s returned %q with exact distance %g, boundary %g (ε=%g)",
						exec, m.Label, exactD, kthTruth, params.Epsilon)
				}
			}
		})
	}
}

// exactDistanceOf computes the exact distance of one candidate.
func exactDistanceOf(t *testing.T, e *Engine, q Query, label string, params core.Params) float64 {
	t.Helper()
	h, err := e.ResolveTarget(q, Target{Candidate: label})
	if err != nil {
		t.Fatal(err)
	}
	target, err := e.ResolveTarget(q, Target{Uniform: true})
	if err != nil {
		t.Fatal(err)
	}
	return params.Metric.Distance(h, target)
}

func TestCandidateTarget(t *testing.T) {
	tbl := testDataset(t, 20_000, 10, 6, 3)
	e := New(tbl)
	// The candidate used as target must rank first (distance ~0).
	z, _ := tbl.Column("Z")
	label := z.Dict.Value(0)
	res, err := e.Run(baseQuery(), Target{Candidate: label}, Options{
		Params: testParams(), Executor: FastMatch, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopK[0].Label != label {
		t.Fatalf("target candidate %q not ranked first: %+v", label, res.TopK[0])
	}
	if res.TopK[0].Distance > 0.15 {
		t.Fatalf("self-distance %g too large", res.TopK[0].Distance)
	}
}

func TestTargetValidation(t *testing.T) {
	tbl := testDataset(t, 1000, 5, 4, 4)
	e := New(tbl)
	if _, err := e.Run(baseQuery(), Target{}, Options{Params: testParams()}); err == nil {
		t.Fatal("empty target accepted")
	}
	if _, err := e.Run(baseQuery(), Target{Candidate: "nope"}, Options{Params: testParams()}); err == nil {
		t.Fatal("unknown candidate target accepted")
	}
	if _, err := e.Run(baseQuery(), Target{Counts: []float64{1, 2}}, Options{Params: testParams()}); err == nil {
		t.Fatal("wrong-arity counts target accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	tbl := testDataset(t, 1000, 5, 4, 5)
	e := New(tbl)
	params := testParams()
	cases := []Query{
		{},       // no Z, no X
		{Z: "Z"}, // no X
		{Z: "missing", X: []string{"X"}},
		{Z: "Z", X: []string{"missing"}},
		{Z: "Z", XMeasure: "M"}, // bins missing
		{Z: "Z", X: []string{"X"}, KnownCandidates: []string{"not_a_value"}},
	}
	for i, q := range cases {
		if _, err := e.Run(q, Target{Uniform: true}, Options{Params: params}); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
}

func TestMultiXComposite(t *testing.T) {
	tbl := testDataset(t, 20_000, 10, 6, 6)
	e := New(tbl)
	q := Query{Z: "Z", X: []string{"X", "W"}}
	res, err := e.Run(q, Target{Uniform: true}, Options{
		Params: testParams(), Executor: FastMatch, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GroupLabels) != 6*4 {
		t.Fatalf("composite groups = %d, want 24", len(res.GroupLabels))
	}
	if res.GroupLabels[0] != "X_0|W_0" {
		t.Fatalf("label[0] = %q", res.GroupLabels[0])
	}
	if len(res.TopK) != 3 {
		t.Fatalf("topk size %d", len(res.TopK))
	}
}

func TestBinnedXGroups(t *testing.T) {
	tbl := testDataset(t, 20_000, 10, 6, 7)
	e := New(tbl)
	binner, err := colstore.NewUniformBinner(0, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Z: "Z", XMeasure: "M", XBins: binner}
	res, err := e.Run(q, Target{Uniform: true}, Options{
		Params: testParams(), Executor: ScanMatch, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GroupLabels) != 10 {
		t.Fatalf("binned groups = %d", len(res.GroupLabels))
	}
	if res.GroupLabels[0] != "[0, 20)" {
		t.Fatalf("bin label = %q", res.GroupLabels[0])
	}
}

func TestRowFilter(t *testing.T) {
	tbl := testDataset(t, 20_000, 10, 6, 8)
	e := New(tbl)
	w, _ := tbl.Column("W")
	q := baseQuery()
	q.Filter = func(row int) bool { return w.Code(row) == 0 }
	res, err := e.Run(q, Target{Uniform: true}, Options{
		Params: testParams(), Executor: Scan,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Total mass across candidate histograms must equal filtered rows.
	var mass float64
	for _, m := range res.TopK {
		mass += m.Histogram.Total()
	}
	filtered := 0
	for i := 0; i < tbl.NumRows(); i++ {
		if w.Code(i) == 0 {
			filtered++
		}
	}
	if mass > float64(filtered) {
		t.Fatalf("histograms contain %g tuples, only %d pass the filter", mass, filtered)
	}
	if filtered == tbl.NumRows() {
		t.Fatal("filter had no effect; test setup broken")
	}
}

func TestUnknownDomainDummyCandidate(t *testing.T) {
	tbl := testDataset(t, 30_000, 12, 6, 9)
	e := New(tbl)
	z, _ := tbl.Column("Z")
	known := []string{z.Dict.Value(0), z.Dict.Value(1), z.Dict.Value(2)}
	q := baseQuery()
	q.KnownCandidates = known
	res, err := e.Run(q, Target{Uniform: true}, Options{
		Params: testParams(), Executor: FastMatch, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the known candidates plus possibly the dummy can appear.
	valid := map[string]bool{"<other>": true}
	for _, k := range known {
		valid[k] = true
	}
	for _, m := range res.TopK {
		if !valid[m.Label] {
			t.Errorf("unexpected candidate %q with restricted domain", m.Label)
		}
	}
}

func TestPrunedLowSelectivityCandidates(t *testing.T) {
	tbl := testDataset(t, 80_000, 60, 6, 10)
	e := New(tbl)
	params := testParams()
	params.Sigma = 0.004
	params.Stage1Samples = 30_000
	res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: FastMatch, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pruned) == 0 {
		t.Skip("no candidates pruned at this seed; acceptable but uninformative")
	}
	// Verify precision against exact selectivities.
	z, _ := tbl.Column("Z")
	counts := map[string]int{}
	for i := 0; i < tbl.NumRows(); i++ {
		counts[z.Dict.Value(z.Code(i))]++
	}
	for _, label := range res.Pruned {
		sel := float64(counts[label]) / float64(tbl.NumRows())
		if sel >= params.Sigma {
			t.Errorf("pruned %q with selectivity %g ≥ σ %g", label, sel, params.Sigma)
		}
	}
}

func TestFastMatchSkipsBlocks(t *testing.T) {
	// With few active candidates late in the run, FastMatch must skip
	// blocks; ScanMatch never skips.
	tbl := testDataset(t, 120_000, 80, 8, 11)
	e1 := New(tbl)
	params := testParams()
	params.Epsilon = 0.05
	resFM, err := e1.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: FastMatch, Seed: 6, Lookahead: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(tbl)
	resSM, err := e2.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: params, Executor: ScanMatch, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resSM.IO.BlocksSkipped != 0 {
		t.Fatalf("ScanMatch skipped %d blocks", resSM.IO.BlocksSkipped)
	}
	if resFM.IO.BlocksSkipped == 0 {
		t.Log("FastMatch skipped no blocks on this workload (all candidates active); not fatal")
	}
}

func TestDeterministicWithFixedSeed(t *testing.T) {
	tbl := testDataset(t, 30_000, 15, 6, 12)
	run := func() *Result {
		e := New(tbl)
		res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
			Params: testParams(), Executor: ScanMatch, Seed: 9, StartBlock: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.TopK) != len(b.TopK) {
		t.Fatal("nondeterministic topk size")
	}
	for i := range a.TopK {
		if a.TopK[i].Label != b.TopK[i].Label {
			t.Fatal("nondeterministic topk")
		}
		if math.Abs(a.TopK[i].Distance-b.TopK[i].Distance) > 1e-12 {
			t.Fatal("nondeterministic distances")
		}
	}
}

func TestPredicateCandidates(t *testing.T) {
	tbl := testDataset(t, 40_000, 10, 6, 13)
	e := New(tbl)
	dmZ, err := e.Density("Z")
	if err != nil {
		t.Fatal(err)
	}
	dmW, err := e.Density("W")
	if err != nil {
		t.Fatal(err)
	}
	// Candidates: (Z=0 AND W=0), (Z=1), (Z=2 OR Z=3).
	qp := Query{X: []string{"X"}}
	qp.CandidatePreds = append(qp.CandidatePreds,
		&bitmap.AndPred{Children: []bitmap.Predicate{
			&bitmap.ValuePred{Column: "Z", Code: 0, DM: dmZ},
			&bitmap.ValuePred{Column: "W", Code: 0, DM: dmW},
		}},
		&bitmap.ValuePred{Column: "Z", Code: 1, DM: dmZ},
		&bitmap.OrPred{Children: []bitmap.Predicate{
			&bitmap.ValuePred{Column: "Z", Code: 2, DM: dmZ},
			&bitmap.ValuePred{Column: "Z", Code: 3, DM: dmZ},
		}},
	)
	params := testParams()
	params.K = 2
	params.Sigma = 0 // predicates can be rare; keep them all
	params.Stage1Samples = 0
	res, err := e.Run(qp, Target{Uniform: true}, Options{
		Params: params, Executor: FastMatch, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 2 {
		t.Fatalf("topk size %d", len(res.TopK))
	}
	// Compare against Scan over the same predicates.
	truth, err := e.Run(qp, Target{Uniform: true}, Options{Params: params, Executor: Scan})
	if err != nil {
		t.Fatal(err)
	}
	truthBoundary := truth.TopK[len(truth.TopK)-1].Distance
	for _, m := range res.TopK {
		var exactD float64 = -1
		for _, tm := range truth.TopK {
			if tm.Label == m.Label {
				exactD = tm.Distance
			}
		}
		if exactD < 0 {
			continue // not in truth top-2; separation bound checked loosely below
		}
		if exactD-truthBoundary >= params.Epsilon {
			t.Errorf("predicate candidate %q exact distance %g vs boundary %g", m.Label, exactD, truthBoundary)
		}
	}
}

func TestMeasureQueryRejectedDirectly(t *testing.T) {
	tbl := testDataset(t, 1000, 5, 4, 14)
	e := New(tbl)
	q := baseQuery()
	q.Measure = "M"
	if _, err := e.Run(q, Target{Uniform: true}, Options{Params: testParams()}); err == nil {
		t.Fatal("direct SUM query accepted; should direct users to MeasureBiasedView")
	}
}
