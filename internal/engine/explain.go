package engine

// ExplainInfo is a Plan's static execution profile: what the planner
// resolved, what the zone-map skip masks prove prunable, and which
// fast paths each executor family would take — everything knowable
// without running the query. Serving layers expose it verbatim
// (POST /v1/explain), so the field set is JSON-tagged here.
type ExplainInfo struct {
	// Rows/Blocks/BlockSize describe the storage source.
	Rows      int `json:"rows"`
	Blocks    int `json:"blocks"`
	BlockSize int `json:"block_size"`
	// Candidates is the candidate-domain size; CandidateKind is "column"
	// (distinct Z values, bitmap-index backed) or "predicates" (compiled
	// predicate candidates, possibly overlapping).
	Candidates    int    `json:"candidates"`
	CandidateKind string `json:"candidate_kind"`
	// Groups is the histogram width; GroupKind is "single" (one
	// categorical X), "multi" (composite cross product), or "binned"
	// (binned measure).
	Groups    int    `json:"groups"`
	GroupKind string `json:"group_kind"`
	// HasBlockStats reports whether the backend carries per-block
	// statistics (zone maps) at all.
	HasBlockStats bool `json:"has_block_stats"`
	// PrunableBlocks counts blocks the skip masks prove free of
	// qualifying rows for full-read paths (the skipAll mask: candidate
	// union complement plus out-of-range measure blocks);
	// PrunableGroupBlocks the group-side subset SyncMatch/FastMatch
	// apply after their AnyActive probe (skipGrp ⊆ skipAll).
	PrunableBlocks      int `json:"prunable_blocks"`
	PrunableGroupBlocks int `json:"prunable_group_blocks"`
	// ScanKernelEligible reports whether the exact-scan executors would
	// run the vectorized grouped-count kernel for this shape (subject to
	// Options.DisableScanKernels); SamplerFastPath whether the sampling
	// executors would take the devirtualized single-Z/single-X read path.
	ScanKernelEligible bool `json:"scan_kernel_eligible"`
	SamplerFastPath    bool `json:"sampler_fast_path"`
}

// Explain reports the plan's static execution profile without running
// anything: pure inspection of already-built plan state (the skip masks
// are built at Prepare), so it is cheap and safe to call concurrently.
func (p *Plan) Explain() ExplainInfo {
	src := p.engine.src
	info := ExplainInfo{
		Rows:          src.NumRows(),
		Blocks:        src.NumBlocks(),
		BlockSize:     src.BlockSize(),
		Candidates:    p.cand.numCandidates(),
		Groups:        p.grp.groups(),
		HasBlockStats: blockStatsOf(src) != nil,
	}
	if p.multi != nil {
		info.CandidateKind = "predicates"
	} else {
		info.CandidateKind = "column"
	}
	groupShapeOK := false
	switch p.grp.(type) {
	case singleGroups:
		info.GroupKind = "single"
		groupShapeOK = true
	case *multiGroups:
		info.GroupKind = "multi"
		groupShapeOK = true
	case binnedGroups:
		info.GroupKind = "binned"
		groupShapeOK = true
	default:
		info.GroupKind = "other"
	}
	if p.skipAll != nil {
		info.PrunableBlocks = p.skipAll.Count()
	}
	if p.skipGrp != nil {
		info.PrunableGroupBlocks = p.skipGrp.Count()
	}
	// Mirrors scanExec.newKernel's eligibility gates (shape checks plus
	// the accumulator-size cap) without allocating the accumulator.
	_, columnCand := p.cand.(*columnCandidates)
	info.ScanKernelEligible = p.query.Filter == nil &&
		info.Groups > 0 && info.Candidates > 0 &&
		int64(info.Groups)*int64(info.Candidates) <= maxKernelCells &&
		groupShapeOK && (p.multi != nil || columnCand)
	// Mirrors blockSampler.initFastPath.
	_, singleGrp := p.grp.(singleGroups)
	info.SamplerFastPath = p.query.Filter == nil && p.multi == nil &&
		columnCand && singleGrp
	return info
}
