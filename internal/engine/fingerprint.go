package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Fingerprinting renders queries, targets, and options as canonical
// strings, so a serving layer can key plan and result caches without
// hashing Go values directly. Two values with equal fingerprints are
// interchangeable for execution: equal query fingerprints may share a
// Plan, and equal (query, target, options) triples produce identical
// Results (runs are deterministic given Seed/StartBlock).

// fpWriter builds a fingerprint from tagged, quoted fields so adjacent
// values can never collide (each string is %q-escaped).
type fpWriter struct{ sb strings.Builder }

func (w *fpWriter) str(tag, v string) { fmt.Fprintf(&w.sb, "%s=%q;", tag, v) }
func (w *fpWriter) strs(tag string, vs []string) {
	fmt.Fprintf(&w.sb, "%s=[", tag)
	for _, v := range vs {
		fmt.Fprintf(&w.sb, "%q,", v)
	}
	w.sb.WriteString("];")
}
func (w *fpWriter) num(tag string, v float64) {
	w.sb.WriteString(tag)
	w.sb.WriteByte('=')
	w.sb.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	w.sb.WriteByte(';')
}
func (w *fpWriter) int(tag string, v int64) {
	w.sb.WriteString(tag)
	w.sb.WriteByte('=')
	w.sb.WriteString(strconv.FormatInt(v, 10))
	w.sb.WriteByte(';')
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Fingerprint returns a canonical cache key for the query shape: two
// queries with the same fingerprint resolve to interchangeable Plans over
// the same Engine. Queries carrying a Filter closure are not
// fingerprintable (closures have no canonical identity) and return an
// error; CandidatePreds are keyed by their String() forms, which the
// bitmap predicates render canonically.
func (q Query) Fingerprint() (string, error) {
	if q.Filter != nil {
		return "", fmt.Errorf("engine: queries with a Filter closure cannot be fingerprinted")
	}
	var w fpWriter
	w.str("z", q.Z)
	w.strs("known", q.KnownCandidates)
	if len(q.CandidatePreds) > 0 {
		preds := make([]string, len(q.CandidatePreds))
		for i, p := range q.CandidatePreds {
			preds[i] = p.String()
		}
		w.strs("preds", preds)
	}
	w.strs("x", q.X)
	w.str("xmeasure", q.XMeasure)
	if q.XBins != nil {
		edges := q.XBins.Edges()
		w.int("xbins", int64(len(edges)))
		for _, e := range edges {
			w.num("e", e)
		}
	}
	w.str("measure", q.Measure)
	return w.sb.String(), nil
}

// Fingerprint returns a canonical cache key for the target specification.
// The case order mirrors Plan.ResolveTarget's precedence (Counts, then
// Uniform, then Candidate) so that two specifications resolving to the
// same target — e.g. candidate+uniform set together, where Uniform wins —
// share a fingerprint, and ones resolving differently never do.
func (t Target) Fingerprint() string {
	var w fpWriter
	switch {
	case len(t.Counts) > 0:
		w.int("counts", int64(len(t.Counts)))
		for _, c := range t.Counts {
			w.num("c", c)
		}
	case t.Uniform:
		w.str("uniform", "true")
	case t.Candidate != "":
		w.str("cand", t.Candidate)
	}
	return w.sb.String()
}

// Fingerprint returns a canonical cache key for every run-affecting
// option. Two runs of the same Plan and target with equal option
// fingerprints produce identical Results: the executors are deterministic
// given Seed (which fixes the start block when StartBlock is negative) and
// Workers (ParallelScan partitioning). OnProgress, Trace, and Quality (no
// effect on the result; purely observational) and Deadline (wall-clock dependent;
// Deadline-bearing runs must not be cached by fingerprint) are
// deliberately excluded — which is also why serving layers must bypass
// their result-cache read for traced requests: the fingerprint of a
// traced and an untraced request is identical by design.
func (o Options) Fingerprint() string {
	var w fpWriter
	p := o.Params
	w.int("k", int64(p.K))
	w.num("eps", p.Epsilon)
	w.num("eps2", p.EpsilonReconstruct)
	w.num("delta", p.Delta)
	w.num("sigma", p.Sigma)
	w.int("m", int64(p.Stage1Samples))
	w.str("metric", p.Metric.String())
	w.int("kmin", int64(p.KRange.KMin))
	w.int("kmax", int64(p.KRange.KMax))
	w.int("rounds", int64(p.MaxRounds))
	w.int("budget", int64(p.RoundBudget))
	w.str("exec", o.Executor.String())
	w.int("lookahead", int64(o.Lookahead))
	w.int("start", int64(o.StartBlock))
	w.int("seed", o.Seed)
	w.int("workers", int64(o.Workers))
	w.int("rowbudget", o.RowBudget)
	// Results are byte-identical across these two knobs; they are still
	// fingerprinted because cached Results carry IOStats, which the knobs
	// do change.
	w.int("noskip", boolInt(o.DisableBlockSkip))
	w.int("nokern", boolInt(o.DisableScanKernels))
	return w.sb.String()
}
