package engine

import (
	"sync"
	"testing"
)

// TestConcurrentEngineStress hammers one shared Engine from many
// goroutines with a mix of query shapes, so concurrent index and density
// builds, plan preparation, and runs all overlap. Run under -race it
// verifies the singleflight-guarded caches and the read-only mappers.
func TestConcurrentEngineStress(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 31)
	e := New(tbl)

	// Distinct candidate columns force concurrent index builds (Z, X, W
	// all serve as Z somewhere below); density builds race with them too.
	queries := []Query{
		{Z: "Z", X: []string{"X"}},
		{Z: "Z", X: []string{"X", "W"}},
		{Z: "X", X: []string{"W"}},
		{Z: "W", X: []string{"X"}},
	}
	executors := []Executor{Scan, ParallelScan, ScanMatch, SyncMatch, FastMatch}

	const goroutines = 12
	const runsPer = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*runsPer)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < runsPer; r++ {
				q := queries[(g+r)%len(queries)]
				exec := executors[(g*runsPer+r)%len(executors)]
				params := testParams()
				params.Sigma = 0.001
				opts := Options{
					Params: params, Executor: exec,
					Seed: int64(g*100 + r), StartBlock: -1,
					Lookahead: 32, Workers: 3,
				}
				if _, err := e.Run(q, Target{Uniform: true}, opts); err != nil {
					errs <- err
					return
				}
				if (g+r)%3 == 0 {
					if _, err := e.Density("W"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentSharedPlan runs one prepared Plan from many goroutines
// concurrently and checks every exact run agrees with the sequential
// ground truth.
func TestConcurrentSharedPlan(t *testing.T) {
	tbl := testDataset(t, 30_000, 15, 6, 32)
	e := New(tbl)
	p, err := e.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	target, err := p.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := p.RunWithTarget(target, Options{Params: testParams(), Executor: Scan})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			exec := ParallelScan
			if g%2 == 1 {
				exec = FastMatch
			}
			results[g], errs[g] = p.RunWithTarget(target, Options{
				Params: testParams(), Executor: exec,
				Seed: int64(g), StartBlock: -1, Lookahead: 16, Workers: 2,
			})
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if g%2 == 0 {
			// ParallelScan runs must be byte-identical to the Scan truth
			// even when racing with FastMatch runs on the same Plan.
			requireIdenticalResults(t, truth, results[g])
		}
	}
}

// TestBuildCacheSingleflight checks that concurrent misses on one key
// run the build exactly once.
func TestBuildCacheSingleflight(t *testing.T) {
	c := newBuildCache[int]()
	var mu sync.Mutex
	builds := 0
	build := func() (int, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return 42, nil
	}
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.get("k", build)
			if err != nil || v != 42 {
				t.Errorf("get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
}

// TestBuildCachePanicRecovery checks that a panicking build neither
// poisons the key (later gets must retry, not deadlock) nor swallows the
// panic on the leader.
func TestBuildCachePanicRecovery(t *testing.T) {
	c := newBuildCache[int]()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic not propagated to leader")
			}
		}()
		_, _ = c.get("k", func() (int, error) { panic("boom") })
	}()
	v, err := c.get("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("get after panic = %d, %v; want 7, nil", v, err)
	}
}
