package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/histogram"
)

// Executor selects the block-selection strategy, mirroring the approaches
// compared in §5.2.
type Executor int

const (
	// Scan is the exact full-pass baseline (no sampling).
	Scan Executor = iota
	// ScanMatch samples by scanning blocks sequentially with no skipping,
	// terminating when HistSim's criterion holds.
	ScanMatch
	// SyncMatch applies AnyActive per block with the last-committed
	// candidate states (Algorithm 2) — no lookahead.
	SyncMatch
	// FastMatch applies AnyActive with lookahead marking (Algorithm 3):
	// marking decisions are made for whole lookahead windows ahead of the
	// reads, decoupling the sampling engine from the I/O manager (§4.2
	// Challenge 4).
	FastMatch
	// ParallelScan is the exact baseline run as N workers over disjoint
	// block partitions with per-worker accumulators merged at a barrier;
	// results are identical to Scan. Worker count comes from
	// Options.Workers (default GOMAXPROCS).
	ParallelScan
)

// String implements fmt.Stringer.
func (e Executor) String() string {
	switch e {
	case Scan:
		return "Scan"
	case ScanMatch:
		return "ScanMatch"
	case SyncMatch:
		return "SyncMatch"
	case FastMatch:
		return "FastMatch"
	case ParallelScan:
		return "ParallelScan"
	default:
		return fmt.Sprintf("Executor(%d)", int(e))
	}
}

// IOStats counts the I/O work a run performed.
type IOStats struct {
	// BlocksRead / BlocksSkipped count block-selection decisions:
	// AnyActive skips and zone-map prunes both land in BlocksSkipped.
	BlocksRead    int64 `json:"blocks_read"`
	BlocksSkipped int64 `json:"blocks_skipped"`
	// BlocksPruned counts the subset of BlocksSkipped proven row-free by
	// per-block statistics (zone maps) rather than by AnyActive.
	BlocksPruned int64 `json:"blocks_pruned"`
	// TuplesRead counts tuples consumed. Rows of pruned blocks are
	// charged to guards and sample accounting (so results stay
	// byte-identical with pruning off) but are NOT counted here: the
	// whole point of pruning is that they were never read.
	TuplesRead int64 `json:"tuples_read"`
	// KernelBlocks counts blocks accumulated by a vectorized scan kernel
	// instead of the scalar per-row path.
	KernelBlocks int64 `json:"kernel_blocks"`
	// Wraps counts cursor wrap-arounds over the block space.
	Wraps int64 `json:"wraps"`
}

// Add accumulates other into s: the mergeable-value fold for I/O
// counters, used by the per-worker merge and by serving layers
// aggregating per-run stats. Like core.Batch.Merge it is associative and
// commutative (integer sums), so per-partition stats folded in any order
// equal a single-stream count.
func (s *IOStats) Add(other IOStats) {
	s.BlocksRead += other.BlocksRead
	s.BlocksSkipped += other.BlocksSkipped
	s.BlocksPruned += other.BlocksPruned
	s.TuplesRead += other.TuplesRead
	s.KernelBlocks += other.KernelBlocks
	s.Wraps += other.Wraps
}

// Chunk-committed parallel sampling rounds
//
// Every sampling pass (Stage1 and each SampleUntil round) is driven by a
// single-threaded *planner* that walks the block permutation making every
// policy decision — consumed-set skips, AnyActive probes, zone-map
// virtual skips, guard/budget checks — against *committed* state only.
// Blocks the planner decides to read are charged eagerly (Drawn, the
// guard's row budget, the consumed set) and appended to a read list;
// the list is dispatched to workers in chunks of samplerChunkRows-worth
// of blocks. Workers accumulate into private mergeable partials
// (core.Batch counts/histograms); at each chunk barrier the planner
// commits their fresh per-candidate counts into the deficit bookkeeping,
// and at round end the partials are merged in worker order via
// core.Batch.Merge.
//
// This plan-then-read structure is what makes results byte-identical for
// ANY worker count, including workers=1:
//
//   - every policy decision is made serially from committed state, so
//     the set and order of planned blocks never depends on worker
//     timing;
//   - every planned block is always read (a guard stop flushes the
//     pending chunk first), so no speculative work is ever discarded and
//     Drawn/IOStats count exactly the committed work;
//   - partials hold only integer-valued quantities, so the worker-order
//     merge is exact (see core.Batch.Merge).
//
// The price is that adaptive decisions — round termination when deficits
// are met, the active set AnyActive probes see — advance at chunk
// granularity instead of row granularity: a round may read up to one
// chunk (at most samplerChunkMaxBlocks blocks) past the point a
// fully-serial row-fresh policy would have stopped. That granularity is
// fixed per table (derived from the block size, never from the worker
// count), so it is part of the deterministic contract, and the Sampler
// interface explicitly permits the extra samples — they only sharpen the
// cumulative estimates.
//
// Chunk boundaries sit at fixed positions in block-index space — the
// planner commits after visiting any block b with (b+1) ≡ 0 (mod
// chunkBlocks()), not after accumulating a buffer's worth of reads — so
// the commit schedule is a pure function of the block indices walked,
// independent of how many blocks in a chunk were skipped. That is what
// lets a distributed coordinator split one global cursor walk into
// per-shard segments (see shardrun.go): when shard boundaries fall on
// chunk boundaries, a segment handoff commits exactly where the
// single-node walk would have committed, and the chained run stays
// byte-identical to the single-node run over the concatenated data.
const (
	// samplerChunkRows sizes the commit granularity: chunks target this
	// many rows' worth of blocks.
	samplerChunkRows = 4096
	// samplerChunkMinBlocks / samplerChunkMaxBlocks clamp the chunk for
	// extreme block sizes.
	samplerChunkMinBlocks = 4
	samplerChunkMaxBlocks = 64
)

// blockSampler implements core.Sampler over a block-structured table. It
// owns the I/O manager (block reads) and the sampling engine (block
// selection policy); the statistics engine is internal/core driving it.
type blockSampler struct {
	src    colstore.Reader
	cand   candidateMapper
	multi  *predicateCandidates // non-nil iff candidates may overlap
	grp    groupMapper
	filter func(row int) bool
	mode   Executor

	guard     *runGuard // nil when nothing enforces termination
	lookahead int
	consumed  *bitmap.Bitset
	consCnt   int
	cursor    int
	exact     []bool // sticky per-candidate exhaustion flags
	stats     IOStats
	blockSize int // cached: pruned blocks must not pay BlockSpan
	rows      int

	// workers is the read-fan-out width per chunk; ≤ 1 processes chunks
	// inline on the planner goroutine (no pool, no goroutines). Results
	// are byte-identical for every value — see the package comment above.
	workers int

	// Zone-map pruning masks (nil = no pruning). skipAll marks blocks
	// provably free of qualifying rows for every candidate — safe to
	// virtual-skip wherever a full read would happen (Stage1, ScanMatch).
	// skipGrp ⊆ skipAll marks only group-prunable blocks; it is the mask
	// SyncMatch/FastMatch apply AFTER their AnyActive probe (blocks
	// AnyActive already rejects are skipped without sample accounting,
	// and pruning them here instead would perturb Drawn).
	skipAll *bitmap.Bitset
	skipGrp *bitmap.Bitset

	// Devirtualized fast path for the dominant single-Z/single-X shape:
	// captured code slices replace the per-row interface dispatch of
	// groupOf/candidateOf. Workers additionally accumulate into flat
	// count cells (scanKernel-style) when the shape fits maxKernelCells,
	// folded exactly at round end.
	fastOK    bool
	fastZ     []uint32
	fastX     []uint32
	fastRemap []int // nil = identity

	// Round-local deficit bookkeeping, owned by the planner. active is
	// the committed unmet candidate set AnyActive probes and lookahead
	// marking read; it is refreshed at chunk commits, never mid-chunk.
	deficit []int64
	unmet   int
	active  []int

	// Per-worker diagnostics accumulated across rounds (run-scoped, not
	// part of the result: they are worker-count-dependent by nature).
	wBlocks []int64
	wTuples []int64
	chunks  int64

	// Segment mode (distributed scatter-gather, see shardrun.go): this
	// sampler executes one shard-local slice of a global cursor walk.
	// The planner then never wraps locally (the coordinator chains the
	// walk onto the next shard), bounds each pass by the remaining
	// global visit budget, and evaluates allConsumed against the global
	// block count with the other shards' consumed blocks folded in.
	seg       bool
	segVisits int // remaining global visits for this pass
	segGlobal int // global block count across all shards
	segOthers int // blocks already consumed on other shards
}

func newBlockSampler(src colstore.Reader, cand candidateMapper, grp groupMapper,
	filter func(int) bool, mode Executor, lookahead, startBlock int, guard *runGuard) *blockSampler {
	if lookahead <= 0 {
		lookahead = 1024
	}
	nb := src.NumBlocks()
	cursor := 0
	if nb > 0 {
		cursor = ((startBlock % nb) + nb) % nb
	}
	bs := &blockSampler{
		src:       src,
		cand:      cand,
		grp:       grp,
		filter:    filter,
		mode:      mode,
		guard:     guard,
		lookahead: lookahead,
		workers:   1,
		consumed:  bitmap.NewBitset(nb),
		cursor:    cursor,
		exact:     make([]bool, cand.numCandidates()),
		deficit:   make([]int64, cand.numCandidates()),
		blockSize: src.BlockSize(),
		rows:      src.NumRows(),
	}
	if pc, ok := cand.(*predicateCandidates); ok {
		bs.multi = pc
	}
	return bs
}

// NumCandidates implements core.Sampler.
func (bs *blockSampler) NumCandidates() int { return bs.cand.numCandidates() }

// Groups implements core.Sampler.
func (bs *blockSampler) Groups() int { return bs.grp.groups() }

// TotalRows implements core.Sampler.
func (bs *blockSampler) TotalRows() int64 { return int64(bs.src.NumRows()) }

// Stats returns a snapshot of the I/O counters. The counters are
// maintained with atomics (workers update them concurrently within a
// chunk), so Stats may be called while a run is in flight (e.g. by a
// progress monitor on another goroutine).
func (bs *blockSampler) Stats() IOStats {
	return IOStats{
		BlocksRead:    atomic.LoadInt64(&bs.stats.BlocksRead),
		BlocksSkipped: atomic.LoadInt64(&bs.stats.BlocksSkipped),
		BlocksPruned:  atomic.LoadInt64(&bs.stats.BlocksPruned),
		TuplesRead:    atomic.LoadInt64(&bs.stats.TuplesRead),
		KernelBlocks:  atomic.LoadInt64(&bs.stats.KernelBlocks),
		Wraps:         atomic.LoadInt64(&bs.stats.Wraps),
	}
}

func (bs *blockSampler) allConsumed() bool {
	if bs.seg {
		return bs.segOthers+bs.consCnt >= bs.segGlobal
	}
	return bs.consCnt >= bs.src.NumBlocks()
}

func (bs *blockSampler) newBatch() *core.Batch {
	n := bs.cand.numCandidates()
	return &core.Batch{Counts: make([]int64, n), Hists: make([]*histogram.Histogram, n)}
}

func (bs *blockSampler) sealBatch(b *core.Batch) *core.Batch {
	b.Exhausted = bs.allConsumed()
	b.Exact = append([]bool(nil), bs.exact...)
	if b.Exhausted {
		for i := range b.Exact {
			b.Exact[i] = true
		}
	}
	return b
}

// Stage1 implements core.Sampler: read whole blocks sequentially until at
// least m tuples have been drawn. A guard stop returns the partial batch
// with the termination error (wrapping core.ErrInterrupted).
func (bs *blockSampler) Stage1(m int) (*core.Batch, error) {
	batch := bs.newBatch()
	_, err := bs.runRound(batch, m)
	return bs.sealBatch(batch), err
}

// skipVirtual consumes a stats-pruned block without reading it. Every
// quantity that feeds the statistics engine or a termination guard is
// charged exactly as a real read of a qualifying-row-free block would
// charge it — Drawn (stage-1 p-values consume it), the guard's row
// budget, the consumed set driving exactness inference — so the run's
// decisions, and therefore its results (including partials under
// cancellation), are byte-identical to a run with pruning disabled. The
// only deltas are the documented I/O counters, and BlockSpan is never
// called: a simulated-latency backend must not sleep for a block the
// scan proved it does not need.
func (bs *blockSampler) skipVirtual(b int, batch *core.Batch) {
	lo := b * bs.blockSize
	hi := lo + bs.blockSize
	if hi > bs.rows {
		hi = bs.rows
	}
	batch.Drawn += int64(hi - lo)
	bs.guard.addRows(int64(hi - lo))
	bs.consumed.Set(b)
	bs.consCnt++
	atomic.AddInt64(&bs.stats.BlocksSkipped, 1)
	atomic.AddInt64(&bs.stats.BlocksPruned, 1)
}

// chargeBlock commits the decision to read block b: its rows are charged
// to the batch and the guard, and the block marked consumed, before any
// worker touches it. Planned work is never abandoned (a guard stop
// flushes the pending chunk), so eager charging keeps Drawn and budget
// accounting identical to a fully-serial read-then-charge loop.
func (bs *blockSampler) chargeBlock(b int, batch *core.Batch) {
	lo := b * bs.blockSize
	hi := lo + bs.blockSize
	if hi > bs.rows {
		hi = bs.rows
	}
	batch.Drawn += int64(hi - lo)
	bs.guard.addRows(int64(hi - lo))
	bs.consumed.Set(b)
	bs.consCnt++
}

// SampleUntil implements core.Sampler with the executor's block policy.
func (bs *blockSampler) SampleUntil(need map[int]int) (*core.Batch, error) {
	switch bs.mode {
	case Scan, ScanMatch, SyncMatch, FastMatch:
	default:
		return nil, fmt.Errorf("engine: unknown executor %v", bs.mode)
	}
	batch := bs.newBatch()
	bs.unmet = 0
	for i := range bs.deficit {
		bs.deficit[i] = 0
	}
	for id, n := range need {
		if id < 0 || id >= bs.cand.numCandidates() {
			return nil, fmt.Errorf("engine: need for unknown candidate %d", id)
		}
		if n > 0 && !bs.exact[id] {
			bs.deficit[id] = int64(n)
			bs.unmet++
		}
	}
	if bs.unmet == 0 {
		return bs.sealBatch(batch), nil
	}
	bs.refreshActive()
	if _, stopErr := bs.runRound(batch, -1); stopErr != nil {
		// Interrupted mid-pass: the exactness inference below needs a
		// completed pass, so skip it and hand the partial batch up.
		return bs.sealBatch(batch), stopErr
	}
	// Any candidate still in deficit after a full pass has no tuples left
	// in unconsumed blocks (AnyActive is sound), so its cumulative
	// estimate is exact.
	if bs.unmet > 0 {
		for id, d := range bs.deficit {
			if d > 0 && bs.candidateExhausted(id) {
				bs.exact[id] = true
			}
		}
	}
	return bs.sealBatch(batch), nil
}

// refreshActive rebuilds the committed unmet candidate set.
func (bs *blockSampler) refreshActive() {
	bs.active = bs.active[:0]
	for id, d := range bs.deficit {
		if d > 0 {
			bs.active = append(bs.active, id)
		}
	}
}

// advance returns the current cursor block and moves the cursor. In
// segment mode the cursor parks at NumBlocks instead of wrapping: the
// coordinator owns the wrap (it chains the walk onto the next shard and
// accounts the global Wraps counter itself).
func (bs *blockSampler) advance() int {
	b := bs.cursor
	bs.cursor++
	if bs.cursor >= bs.src.NumBlocks() && !bs.seg {
		bs.cursor = 0
		atomic.AddInt64(&bs.stats.Wraps, 1)
	}
	return b
}

// chunkBlocks derives the commit granularity from the block size alone —
// never from the worker count, which must not influence any decision.
func (bs *blockSampler) chunkBlocks() int {
	if bs.blockSize <= 0 {
		return samplerChunkMinBlocks
	}
	c := samplerChunkRows / bs.blockSize
	if c < samplerChunkMinBlocks {
		c = samplerChunkMinBlocks
	}
	if c > samplerChunkMaxBlocks {
		c = samplerChunkMaxBlocks
	}
	return c
}

// runRound is the unified planner/committer for one sampling pass.
// stage1Need ≥ 0 selects stage-1 mode: sequential reads (no AnyActive)
// until Drawn reaches stage1Need. stage1Need < 0 selects deficit mode:
// the executor's block policy until every deficit is met (at chunk
// granularity) or the pass completes. Returns the number of cursor
// visits consumed and the guard's termination error (nil for a
// completed pass); on error the pending chunk has been flushed and the
// batch holds every committed sample.
func (bs *blockSampler) runRound(batch *core.Batch, stage1Need int) (int, error) {
	total := bs.src.NumBlocks()
	if total == 0 {
		return 0, nil
	}
	stage1 := stage1Need >= 0
	chunkCap := bs.chunkBlocks()
	workers := bs.workers
	if workers > chunkCap {
		workers = chunkCap
	}
	if workers < 1 {
		workers = 1
	}
	limit := total
	if bs.seg && bs.segVisits < limit {
		limit = bs.segVisits
	}
	ws := bs.newWorkers(workers)

	// The per-round worker pool: spawned once per round (not per chunk),
	// joined on every return path so a canceled run never leaves readers
	// behind (the same discipline the old lookahead marker had).
	var tasks chan samplerTask
	var acks chan struct{}
	if workers > 1 {
		tasks = make(chan samplerTask)
		acks = make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range tasks {
					t.w.process(t.blocks)
					acks <- struct{}{}
				}
			}()
		}
		defer func() { close(tasks); wg.Wait() }()
	}

	readBuf := make([]int, 0, chunkCap)
	flush := func() {
		n := len(readBuf)
		if n == 0 {
			return
		}
		if workers == 1 || n < 2 {
			ws[0].process(readBuf)
		} else {
			p := workers
			if p > n {
				p = n
			}
			for i := 0; i < p; i++ {
				tasks <- samplerTask{w: ws[i], blocks: readBuf[i*n/p : (i+1)*n/p]}
			}
			for i := 0; i < p; i++ {
				<-acks
			}
		}
		bs.commitChunk(ws)
		readBuf = readBuf[:0]
	}

	// FastMatch lookahead window state: marking decisions are computed
	// for lookahead-sized tiles at fixed block-index positions
	// [kL, (k+1)L) (Algorithm 3), each tile marked in one bulk AnyActive
	// pass from the active set committed when the planner first enters
	// it (a round starting mid-tile marks only the tile's remainder).
	// Marks within a tile are stale by up to the tile length — safe
	// because the deficit set only shrinks within a round, so a stale
	// mark is a superset of what fresher state would mark. Anchoring
	// tiles to block indices (not to the visit sequence) keeps the
	// marking schedule a pure function of the blocks walked, so shard
	// segments whose boundaries fall on tile boundaries mark exactly as
	// the single-node walk over the concatenated data would.
	var mark []bool
	winStart, winEnd := 0, 0 // current tile's block range; empty until first FastMatch visit

	visited := 0
	var stopErr error
	for ; visited < limit; visited++ {
		if stage1 {
			if batch.Drawn >= int64(stage1Need) {
				break
			}
		} else if bs.unmet == 0 {
			break
		}
		if bs.allConsumed() {
			break
		}
		if bs.seg && bs.cursor >= total {
			break // segment end: the coordinator chains onto the next shard
		}
		if stopErr = bs.guard.stop(); stopErr != nil {
			break
		}
		b := bs.advance()
		read := false
		switch {
		case !stage1 && bs.mode == FastMatch:
			if b < winStart || b >= winEnd {
				n := bs.lookahead - b%bs.lookahead
				if n > total-b {
					n = total - b
				}
				if cap(mark) < n {
					mark = make([]bool, n)
				} else {
					mark = mark[:n]
					for i := range mark {
						mark[i] = false
					}
				}
				bs.cand.markAnyActive(bs.active, b, mark)
				winStart, winEnd = b, b+n
			}
			switch {
			case bs.consumed.Get(b):
			case !mark[b-winStart]:
				atomic.AddInt64(&bs.stats.BlocksSkipped, 1)
			case bs.skipGrp != nil && bs.skipGrp.Get(b):
				bs.skipVirtual(b, batch)
			default:
				read = true
			}
		case !stage1 && bs.mode == SyncMatch:
			switch {
			case bs.consumed.Get(b):
			// Algorithm 2: probe each active candidate's bitmap for this
			// single block — the cache-hostile pattern SyncMatch models —
			// with the last-committed active set.
			case !bs.cand.blockAnyActive(bs.active, b):
				atomic.AddInt64(&bs.stats.BlocksSkipped, 1)
			// Group-prunable blocks only: candidate-prunable ones were
			// already rejected (without sample accounting) by AnyActive.
			case bs.skipGrp != nil && bs.skipGrp.Get(b):
				bs.skipVirtual(b, batch)
			default:
				read = true
			}
		default: // stage 1, ScanMatch, Scan: read everything not pruned
			switch {
			case bs.consumed.Get(b):
			case bs.skipAll != nil && bs.skipAll.Get(b):
				bs.skipVirtual(b, batch)
			default:
				read = true
			}
		}
		if read {
			bs.chargeBlock(b, batch)
			readBuf = append(readBuf, b)
		}
		// Commit at fixed block-index boundaries (see the package
		// comment): after block b with (b+1) ≡ 0 mod chunkCap, and at
		// the end of the block space (the wrap point), so the commit
		// schedule never depends on how many blocks were skipped.
		if (b+1)%chunkCap == 0 || b+1 == total {
			flush()
		}
	}
	flush()
	bs.foldWorkers(batch, ws)
	return visited, stopErr
}

// commitChunk folds each worker's fresh per-chunk counts into the
// deficit bookkeeping, in worker order. Runs on the planner goroutine at
// a chunk barrier — no worker is in flight.
func (bs *blockSampler) commitChunk(ws []*samplerWorker) {
	changed := false
	for _, w := range ws {
		for _, id := range w.touched {
			c := w.cnt[id]
			w.counts[id] += c
			w.cnt[id] = 0
			if d := bs.deficit[id]; d > 0 {
				if c >= d {
					bs.deficit[id] = 0
					bs.unmet--
					changed = true
				} else {
					bs.deficit[id] = d - c
				}
			}
		}
		w.touched = w.touched[:0]
	}
	if changed {
		bs.refreshActive()
	}
	bs.chunks++
}

// foldWorkers merges the per-worker round partials into the round batch
// in worker order (core.Batch.Merge: exact integer sums, so the merged
// batch is byte-identical for any worker count) and accumulates the
// per-worker diagnostics.
func (bs *blockSampler) foldWorkers(batch *core.Batch, ws []*samplerWorker) {
	if bs.wBlocks == nil {
		bs.wBlocks = make([]int64, len(ws))
		bs.wTuples = make([]int64, len(ws))
	}
	for i, w := range ws {
		if err := batch.Merge(w.roundBatch()); err != nil {
			panic(err) // candidate domains match by construction
		}
		if i < len(bs.wBlocks) {
			bs.wBlocks[i] += w.blocks
			bs.wTuples[i] += w.tuples
		}
	}
}

// initFastPath captures direct code slices for the single-Z/single-X
// query shape so workers bypass per-row interface dispatch. The per-row
// accumulation sequence is value-identical to the generic path, so
// batches, deficits, and committed active sets are byte-identical.
func (bs *blockSampler) initFastPath() {
	if bs.filter != nil || bs.multi != nil {
		return
	}
	cc, ok := bs.cand.(*columnCandidates)
	if !ok {
		return
	}
	sg, ok := bs.grp.(singleGroups)
	if !ok {
		return
	}
	bs.fastOK = true
	bs.fastZ = cc.codes
	bs.fastX = sg.codes
	bs.fastRemap = cc.remap
}

// samplerTask is one worker's share of a chunk's read list.
type samplerTask struct {
	w      *samplerWorker
	blocks []int
}

// samplerWorker is one worker's private accumulation state for a round:
// a mergeable partial (counts + histograms, merged at round end) plus
// the per-chunk fresh counts the planner commits at each barrier.
// Workers share no mutable state — they read immutable plan data, write
// their own fields, and bump the sampler's atomic I/O counters.
type samplerWorker struct {
	bs     *blockSampler
	groups int
	// counts/hists are the round-cumulative mergeable partial.
	counts []int64
	hists  []*histogram.Histogram
	// acc is the flat scanKernel-style cell array [cand*groups+group],
	// non-nil only for the devirtualized single/single shape within the
	// kernel cell cap; folded exactly into hists at round end.
	acc []int64
	// cnt/touched are the per-chunk fresh counts, reset at each commit.
	cnt     []int64
	touched []int
	// blocks/tuples are per-worker diagnostics.
	blocks   int64
	tuples   int64
	multiBuf []int
}

// newWorkers allocates the round's worker states. The flat-cell kernel
// path needs fastOK (shape + kernels enabled) and a cell array within
// the scan kernels' cap.
func (bs *blockSampler) newWorkers(n int) []*samplerWorker {
	nc := bs.cand.numCandidates()
	groups := bs.grp.groups()
	kernel := bs.fastOK && nc > 0 && groups > 0 && nc*groups <= maxKernelCells
	ws := make([]*samplerWorker, n)
	for i := range ws {
		w := &samplerWorker{
			bs:     bs,
			groups: groups,
			counts: make([]int64, nc),
			hists:  make([]*histogram.Histogram, nc),
			cnt:    make([]int64, nc),
		}
		if kernel {
			w.acc = make([]int64, nc*groups)
		}
		ws[i] = w
	}
	return ws
}

// process reads the given blocks, accumulating into the worker's private
// state. Runs on a pool goroutine (or inline for workers=1); the only
// shared writes are the atomic I/O counters.
func (w *samplerWorker) process(blocks []int) {
	bs := w.bs
	groups := w.groups
	for _, b := range blocks {
		lo, hi := bs.src.BlockSpan(b)
		switch {
		case w.acc != nil:
			if bs.fastRemap == nil {
				for row := lo; row < hi; row++ {
					z := int(bs.fastZ[row])
					w.acc[z*groups+int(bs.fastX[row])]++
					if w.cnt[z] == 0 {
						w.touched = append(w.touched, z)
					}
					w.cnt[z]++
				}
			} else {
				for row := lo; row < hi; row++ {
					z := bs.fastRemap[bs.fastZ[row]]
					w.acc[z*groups+int(bs.fastX[row])]++
					if w.cnt[z] == 0 {
						w.touched = append(w.touched, z)
					}
					w.cnt[z]++
				}
			}
			atomic.AddInt64(&bs.stats.KernelBlocks, 1)
		case bs.fastOK:
			// Devirtualized but above the kernel cell cap: per-row
			// histogram accumulation on captured code slices.
			if bs.fastRemap == nil {
				for row := lo; row < hi; row++ {
					w.record(int(bs.fastZ[row]), int(bs.fastX[row]))
				}
			} else {
				for row := lo; row < hi; row++ {
					w.record(bs.fastRemap[bs.fastZ[row]], int(bs.fastX[row]))
				}
			}
			atomic.AddInt64(&bs.stats.KernelBlocks, 1)
		default:
			for row := lo; row < hi; row++ {
				if bs.filter != nil && !bs.filter(row) {
					continue
				}
				g := bs.grp.groupOf(row)
				if g < 0 {
					continue
				}
				if bs.multi != nil {
					// All-matches membership: a predicate candidate's
					// histogram includes every row satisfying it, even
					// rows an earlier overlapping predicate also matched.
					w.multiBuf = bs.multi.candidatesOf(row, w.multiBuf[:0])
					for _, id := range w.multiBuf {
						w.record(id, g)
					}
					continue
				}
				if id := bs.cand.candidateOf(row); id >= 0 {
					w.record(id, g)
				}
			}
		}
		n := int64(hi - lo)
		w.blocks++
		w.tuples += n
		atomic.AddInt64(&bs.stats.TuplesRead, n)
		atomic.AddInt64(&bs.stats.BlocksRead, 1)
	}
}

func (w *samplerWorker) record(id, g int) {
	if w.hists[id] == nil {
		w.hists[id] = histogram.New(w.groups)
	}
	w.hists[id].Add(g)
	if w.cnt[id] == 0 {
		w.touched = append(w.touched, id)
	}
	w.cnt[id]++
}

// roundBatch materializes the worker's mergeable partial. The flat cell
// array folds via AddN with integral counts — bit-identical to per-row
// Add accumulation.
func (w *samplerWorker) roundBatch() *core.Batch {
	if w.acc != nil {
		for id, c := range w.counts {
			if c == 0 {
				continue
			}
			h := histogram.New(w.groups)
			base := id * w.groups
			for g := 0; g < w.groups; g++ {
				if n := w.acc[base+g]; n != 0 {
					h.AddN(g, float64(n))
				}
			}
			w.hists[id] = h
		}
	}
	return &core.Batch{Counts: w.counts, Hists: w.hists}
}

// candidateExhausted reports whether every block containing candidate i
// has been consumed.
func (bs *blockSampler) candidateExhausted(i int) bool {
	cb := bs.cand.candidateBlocks(i)
	if cb == nil {
		return bs.allConsumed()
	}
	for w := 0; w < cb.NumWords(); w++ {
		if cb.Word(w)&^bs.consumed.Word(w) != 0 {
			return false
		}
	}
	return true
}
