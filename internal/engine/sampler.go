package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/histogram"
)

// Executor selects the block-selection strategy, mirroring the approaches
// compared in §5.2.
type Executor int

const (
	// Scan is the exact full-pass baseline (no sampling).
	Scan Executor = iota
	// ScanMatch samples by scanning blocks sequentially with no skipping,
	// terminating when HistSim's criterion holds.
	ScanMatch
	// SyncMatch applies AnyActive per block, synchronously, with the
	// freshest candidate states (Algorithm 2) — no lookahead.
	SyncMatch
	// FastMatch applies AnyActive with asynchronous lookahead marking
	// (Algorithm 3): the sampling engine marks batches of blocks while the
	// I/O manager reads, decoupling the two (§4.2 Challenge 4).
	FastMatch
	// ParallelScan is the exact baseline run as N workers over disjoint
	// block partitions with per-worker accumulators merged at a barrier;
	// results are identical to Scan. Worker count comes from
	// Options.Workers (default GOMAXPROCS).
	ParallelScan
)

// String implements fmt.Stringer.
func (e Executor) String() string {
	switch e {
	case Scan:
		return "Scan"
	case ScanMatch:
		return "ScanMatch"
	case SyncMatch:
		return "SyncMatch"
	case FastMatch:
		return "FastMatch"
	case ParallelScan:
		return "ParallelScan"
	default:
		return fmt.Sprintf("Executor(%d)", int(e))
	}
}

// IOStats counts the I/O work a run performed.
type IOStats struct {
	// BlocksRead / BlocksSkipped count block-selection decisions:
	// AnyActive skips and zone-map prunes both land in BlocksSkipped.
	BlocksRead    int64 `json:"blocks_read"`
	BlocksSkipped int64 `json:"blocks_skipped"`
	// BlocksPruned counts the subset of BlocksSkipped proven row-free by
	// per-block statistics (zone maps) rather than by AnyActive.
	BlocksPruned int64 `json:"blocks_pruned"`
	// TuplesRead counts tuples consumed. Rows of pruned blocks are
	// charged to guards and sample accounting (so results stay
	// byte-identical with pruning off) but are NOT counted here: the
	// whole point of pruning is that they were never read.
	TuplesRead int64 `json:"tuples_read"`
	// KernelBlocks counts blocks accumulated by a vectorized scan kernel
	// instead of the scalar per-row path.
	KernelBlocks int64 `json:"kernel_blocks"`
	// Wraps counts cursor wrap-arounds over the block space.
	Wraps int64 `json:"wraps"`
}

// Add accumulates other into s (used by per-worker merge and by serving
// layers aggregating per-run stats).
func (s *IOStats) Add(other IOStats) {
	s.BlocksRead += other.BlocksRead
	s.BlocksSkipped += other.BlocksSkipped
	s.BlocksPruned += other.BlocksPruned
	s.TuplesRead += other.TuplesRead
	s.KernelBlocks += other.KernelBlocks
	s.Wraps += other.Wraps
}

// blockSampler implements core.Sampler over a block-structured table. It
// owns the I/O manager (block reads) and the sampling engine (block
// selection policy); the statistics engine is internal/core driving it.
type blockSampler struct {
	src    colstore.Reader
	cand   candidateMapper
	multi  *predicateCandidates // non-nil iff candidates may overlap
	grp    groupMapper
	filter func(row int) bool
	mode   Executor

	guard     *runGuard // nil when nothing enforces termination
	lookahead int
	consumed  *bitmap.Bitset
	consCnt   int
	cursor    int
	exact     []bool // sticky per-candidate exhaustion flags
	stats     IOStats
	blockSize int // cached: pruned blocks must not pay BlockSpan
	rows      int

	// Zone-map pruning masks (nil = no pruning). skipAll marks blocks
	// provably free of qualifying rows for every candidate — safe to
	// virtual-skip wherever a full read would happen (Stage1, ScanMatch).
	// skipGrp ⊆ skipAll marks only group-prunable blocks; it is the mask
	// SyncMatch/FastMatch apply AFTER their AnyActive probe (blocks
	// AnyActive already rejects are skipped without sample accounting,
	// and pruning them here instead would perturb Drawn).
	skipAll *bitmap.Bitset
	skipGrp *bitmap.Bitset

	// Devirtualized fast path for the dominant single-Z/single-X shape:
	// captured code slices replace the per-row interface dispatch of
	// groupOf/candidateOf. record() still runs per row, so deficit
	// bookkeeping and published active sets are byte-identical.
	fastOK    bool
	fastZ     []uint32
	fastX     []uint32
	fastRemap []int // nil = identity

	// Round-local state shared between the I/O manager (reader) and the
	// FastMatch marker goroutine. The reader owns deficit/unmet; the
	// marker only reads the immutable snapshot published in activeSnap,
	// so the hot path is lock-free (the paper's Challenge 4: marking must
	// never block I/O).
	deficit    []int64
	unmet      int
	activeSnap atomic.Pointer[[]int]
}

func newBlockSampler(src colstore.Reader, cand candidateMapper, grp groupMapper,
	filter func(int) bool, mode Executor, lookahead, startBlock int, guard *runGuard) *blockSampler {
	if lookahead <= 0 {
		lookahead = 1024
	}
	nb := src.NumBlocks()
	cursor := 0
	if nb > 0 {
		cursor = ((startBlock % nb) + nb) % nb
	}
	bs := &blockSampler{
		src:       src,
		cand:      cand,
		grp:       grp,
		filter:    filter,
		mode:      mode,
		guard:     guard,
		lookahead: lookahead,
		consumed:  bitmap.NewBitset(nb),
		cursor:    cursor,
		exact:     make([]bool, cand.numCandidates()),
		deficit:   make([]int64, cand.numCandidates()),
		blockSize: src.BlockSize(),
		rows:      src.NumRows(),
	}
	if pc, ok := cand.(*predicateCandidates); ok {
		bs.multi = pc
	}
	return bs
}

// NumCandidates implements core.Sampler.
func (bs *blockSampler) NumCandidates() int { return bs.cand.numCandidates() }

// Groups implements core.Sampler.
func (bs *blockSampler) Groups() int { return bs.grp.groups() }

// TotalRows implements core.Sampler.
func (bs *blockSampler) TotalRows() int64 { return int64(bs.src.NumRows()) }

// Stats returns a snapshot of the I/O counters. The counters are
// maintained with atomics, so Stats may be called while a run is in
// flight (e.g. by a progress monitor on another goroutine).
func (bs *blockSampler) Stats() IOStats {
	return IOStats{
		BlocksRead:    atomic.LoadInt64(&bs.stats.BlocksRead),
		BlocksSkipped: atomic.LoadInt64(&bs.stats.BlocksSkipped),
		BlocksPruned:  atomic.LoadInt64(&bs.stats.BlocksPruned),
		TuplesRead:    atomic.LoadInt64(&bs.stats.TuplesRead),
		KernelBlocks:  atomic.LoadInt64(&bs.stats.KernelBlocks),
		Wraps:         atomic.LoadInt64(&bs.stats.Wraps),
	}
}

func (bs *blockSampler) allConsumed() bool { return bs.consCnt >= bs.src.NumBlocks() }

func (bs *blockSampler) newBatch() *core.Batch {
	n := bs.cand.numCandidates()
	return &core.Batch{Counts: make([]int64, n), Hists: make([]*histogram.Histogram, n)}
}

func (bs *blockSampler) sealBatch(b *core.Batch) *core.Batch {
	b.Exhausted = bs.allConsumed()
	b.Exact = append([]bool(nil), bs.exact...)
	if b.Exhausted {
		for i := range b.Exact {
			b.Exact[i] = true
		}
	}
	return b
}

// Stage1 implements core.Sampler: read whole blocks sequentially until at
// least m tuples have been drawn. A guard stop returns the partial batch
// with the termination error (wrapping core.ErrInterrupted).
func (bs *blockSampler) Stage1(m int) (*core.Batch, error) {
	batch := bs.newBatch()
	total := bs.src.NumBlocks()
	for visited := 0; batch.Drawn < int64(m) && !bs.allConsumed() && visited < total; visited++ {
		if err := bs.guard.stop(); err != nil {
			return bs.sealBatch(batch), err
		}
		b := bs.advance()
		if bs.consumed.Get(b) {
			continue
		}
		if bs.skipAll != nil && bs.skipAll.Get(b) {
			bs.skipVirtual(b, batch)
			continue
		}
		bs.readBlock(b, batch)
	}
	return bs.sealBatch(batch), nil
}

// skipVirtual consumes a stats-pruned block without reading it. Every
// quantity that feeds the statistics engine or a termination guard is
// charged exactly as a real read of a qualifying-row-free block would
// charge it — Drawn (stage-1 p-values consume it), the guard's row
// budget, the consumed set driving exactness inference — so the run's
// decisions, and therefore its results (including partials under
// cancellation), are byte-identical to a run with pruning disabled. The
// only deltas are the documented I/O counters, and BlockSpan is never
// called: a simulated-latency backend must not sleep for a block the
// scan proved it does not need.
func (bs *blockSampler) skipVirtual(b int, batch *core.Batch) {
	lo := b * bs.blockSize
	hi := lo + bs.blockSize
	if hi > bs.rows {
		hi = bs.rows
	}
	batch.Drawn += int64(hi - lo)
	bs.guard.addRows(int64(hi - lo))
	bs.consumed.Set(b)
	bs.consCnt++
	atomic.AddInt64(&bs.stats.BlocksSkipped, 1)
	atomic.AddInt64(&bs.stats.BlocksPruned, 1)
}

// SampleUntil implements core.Sampler with the executor's block policy.
func (bs *blockSampler) SampleUntil(need map[int]int) (*core.Batch, error) {
	batch := bs.newBatch()
	bs.unmet = 0
	for i := range bs.deficit {
		bs.deficit[i] = 0
	}
	for id, n := range need {
		if id < 0 || id >= bs.cand.numCandidates() {
			return nil, fmt.Errorf("engine: need for unknown candidate %d", id)
		}
		if n > 0 && !bs.exact[id] {
			bs.deficit[id] = int64(n)
			bs.unmet++
		}
	}
	if bs.unmet == 0 {
		return bs.sealBatch(batch), nil
	}
	bs.publishActive()
	var stopErr error
	switch bs.mode {
	case ScanMatch, Scan:
		stopErr = bs.runSequential(batch, false)
	case SyncMatch:
		stopErr = bs.runSequential(batch, true)
	case FastMatch:
		stopErr = bs.runLookahead(batch)
	default:
		return nil, fmt.Errorf("engine: unknown executor %v", bs.mode)
	}
	if stopErr != nil {
		// Interrupted mid-pass: the exactness inference below needs a
		// completed pass, so skip it and hand the partial batch up.
		return bs.sealBatch(batch), stopErr
	}
	// Any candidate still in deficit after a full pass has no tuples left
	// in unconsumed blocks (AnyActive is sound), so its cumulative
	// estimate is exact.
	if bs.unmet > 0 {
		for id, d := range bs.deficit {
			if d > 0 && bs.candidateExhausted(id) {
				bs.exact[id] = true
			}
		}
	}
	return bs.sealBatch(batch), nil
}

// publishActive snapshots the unmet candidate ids for the marker.
func (bs *blockSampler) publishActive() {
	active := make([]int, 0, bs.unmet)
	for id, d := range bs.deficit {
		if d > 0 {
			active = append(active, id)
		}
	}
	bs.activeSnap.Store(&active)
}

// advance returns the current cursor block and moves the cursor.
func (bs *blockSampler) advance() int {
	b := bs.cursor
	bs.cursor++
	if bs.cursor >= bs.src.NumBlocks() {
		bs.cursor = 0
		atomic.AddInt64(&bs.stats.Wraps, 1)
	}
	return b
}

// runSequential drives ScanMatch (anyActive=false: read everything) and
// SyncMatch (anyActive=true: per-block probe with freshest active set).
// It returns the guard's termination error, or nil for a completed pass.
func (bs *blockSampler) runSequential(batch *core.Batch, anyActive bool) error {
	total := bs.src.NumBlocks()
	for visited := 0; visited < total && bs.unmet > 0 && !bs.allConsumed(); visited++ {
		if err := bs.guard.stop(); err != nil {
			return err
		}
		b := bs.advance()
		if bs.consumed.Get(b) {
			continue
		}
		if anyActive {
			// Algorithm 2: probe each active candidate's bitmap for this
			// single block — the cache-hostile pattern SyncMatch models —
			// with the freshest possible active set.
			if !bs.cand.blockAnyActive(*bs.activeSnap.Load(), b) {
				atomic.AddInt64(&bs.stats.BlocksSkipped, 1)
				continue
			}
			// Group-prunable blocks only: candidate-prunable ones were
			// already rejected (without sample accounting) by AnyActive.
			if bs.skipGrp != nil && bs.skipGrp.Get(b) {
				bs.skipVirtual(b, batch)
				continue
			}
		} else if bs.skipAll != nil && bs.skipAll.Get(b) {
			bs.skipVirtual(b, batch)
			continue
		}
		bs.readBlock(b, batch)
	}
	return nil
}

// window is one lookahead batch of marking decisions handed from the
// sampling engine's marker to the I/O manager (Figure 7).
type window struct {
	start int
	mark  []bool
}

// runLookahead drives FastMatch: a marker goroutine applies AnyActive to
// lookahead-sized chunks of upcoming blocks (Algorithm 3) while the
// calling goroutine — the I/O manager — reads previously marked blocks.
// The marker works from published active-set snapshots; staleness is safe
// because the deficit set only shrinks within a round, so a stale mark is
// a superset of what the freshest state would mark.
//
// It returns the guard's termination error, or nil for a completed pass.
// Every return path — completion, termination, guard stop — closes done
// and joins the marker goroutine first, so a canceled run never leaves a
// marker probing indexes (or pinning a live-table view) behind it.
func (bs *blockSampler) runLookahead(batch *core.Batch) error {
	total := bs.src.NumBlocks()
	if total == 0 {
		return nil
	}
	windows := make(chan window, 2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)

	// Sampling engine: marker thread.
	go func() {
		defer wg.Done()
		defer close(windows)
		pos := bs.cursor
		marked := 0
		for marked < total {
			n := bs.lookahead
			if n > total-marked {
				n = total - marked
			}
			active := *bs.activeSnap.Load()
			if len(active) == 0 {
				return
			}
			w := window{start: pos, mark: make([]bool, n)}
			if w.start+n <= total {
				bs.cand.markAnyActive(active, w.start, w.mark)
			} else {
				// Wrap-around: mark the tail and head segments separately.
				tail := total - w.start
				bs.cand.markAnyActive(active, w.start, w.mark[:tail])
				bs.cand.markAnyActive(active, 0, w.mark[tail:])
			}
			select {
			case windows <- w:
			case <-done:
				return
			}
			pos = (pos + n) % total
			marked += n
		}
	}()

	// I/O manager: read marked blocks.
	visited := 0
	var stopErr error
readLoop:
	for w := range windows {
		for i, marked := range w.mark {
			if stopErr = bs.guard.stop(); stopErr != nil {
				break readLoop
			}
			if visited >= total || bs.unmet == 0 || bs.allConsumed() {
				break readLoop
			}
			visited++
			b := (w.start + i) % total
			if bs.consumed.Get(b) {
				continue
			}
			if !marked {
				atomic.AddInt64(&bs.stats.BlocksSkipped, 1)
				continue
			}
			if bs.skipGrp != nil && bs.skipGrp.Get(b) {
				bs.skipVirtual(b, batch)
				continue
			}
			bs.readBlock(b, batch)
		}
	}
	close(done)
	wg.Wait()
	// Keep the shared cursor roughly where reading stopped so later
	// stages continue from fresh blocks.
	bs.cursor = (bs.cursor + visited) % total
	return stopErr
}

// initFastPath captures direct code slices for the single-Z/single-X
// query shape so readBlock bypasses per-row interface dispatch. The
// record sequence is unchanged — same calls, same order — so batches,
// deficits, and published active sets are byte-identical to the
// generic path.
func (bs *blockSampler) initFastPath() {
	if bs.filter != nil || bs.multi != nil {
		return
	}
	cc, ok := bs.cand.(*columnCandidates)
	if !ok {
		return
	}
	sg, ok := bs.grp.(singleGroups)
	if !ok {
		return
	}
	bs.fastOK = true
	bs.fastZ = cc.codes
	bs.fastX = sg.codes
	bs.fastRemap = cc.remap
}

// readBlock consumes block b: every row is drawn, candidate and group
// mapped, and the batch and deficit updated. Caller ensures b is
// unconsumed.
func (bs *blockSampler) readBlock(b int, batch *core.Batch) {
	lo, hi := bs.src.BlockSpan(b)
	if bs.fastOK {
		// Devirtualized kernel: single categorical group (groupOf is the
		// X code, never negative) and column candidates (candidateOf is
		// the Z code, remapped when a known-candidate domain is set,
		// always ≥ 0 by construction — unassigned values map to the
		// dummy). Drawn is bulk-charged up front; within a block nothing
		// reads it.
		batch.Drawn += int64(hi - lo)
		if bs.fastRemap == nil {
			for row := lo; row < hi; row++ {
				bs.record(int(bs.fastZ[row]), int(bs.fastX[row]), batch)
			}
		} else {
			for row := lo; row < hi; row++ {
				bs.record(bs.fastRemap[bs.fastZ[row]], int(bs.fastX[row]), batch)
			}
		}
		atomic.AddInt64(&bs.stats.TuplesRead, int64(hi-lo))
		atomic.AddInt64(&bs.stats.KernelBlocks, 1)
		bs.guard.addRows(int64(hi - lo))
		bs.consumed.Set(b)
		bs.consCnt++
		atomic.AddInt64(&bs.stats.BlocksRead, 1)
		return
	}
	var multiBuf []int
	for row := lo; row < hi; row++ {
		batch.Drawn++
		if bs.filter != nil && !bs.filter(row) {
			continue
		}
		g := bs.grp.groupOf(row)
		if g < 0 {
			continue
		}
		if bs.multi != nil {
			multiBuf = bs.multi.candidatesOf(row, multiBuf[:0])
			for _, id := range multiBuf {
				bs.record(id, g, batch)
			}
			continue
		}
		if id := bs.cand.candidateOf(row); id >= 0 {
			bs.record(id, g, batch)
		}
	}
	atomic.AddInt64(&bs.stats.TuplesRead, int64(hi-lo))
	bs.guard.addRows(int64(hi - lo))
	bs.consumed.Set(b)
	bs.consCnt++
	atomic.AddInt64(&bs.stats.BlocksRead, 1)
}

func (bs *blockSampler) record(id, g int, batch *core.Batch) {
	if batch.Hists[id] == nil {
		batch.Hists[id] = histogram.New(bs.grp.groups())
	}
	batch.Hists[id].Add(g)
	batch.Counts[id]++
	if d := bs.deficit[id]; d > 0 {
		bs.deficit[id] = d - 1
		if d == 1 {
			bs.unmet--
			bs.publishActive()
		}
	}
}

// candidateExhausted reports whether every block containing candidate i
// has been consumed.
func (bs *blockSampler) candidateExhausted(i int) bool {
	cb := bs.cand.candidateBlocks(i)
	if cb == nil {
		return bs.allConsumed()
	}
	for w := 0; w < cb.NumWords(); w++ {
		if cb.Word(w)&^bs.consumed.Word(w) != 0 {
			return false
		}
	}
	return true
}
