// Command census reproduces the census exploration scenario of Example 1:
// a large synthetic population table with several attributes, against
// which an analyst runs a sequence of matching queries — including a
// predicate-filtered query (Q3's "(nationality, religion) pairs" flavour
// via composite grouping) and a k-range query (Appendix A.2.3).
//
// Run with:
//
//	go run ./examples/census [-rows 500000]
package main

import (
	"flag"
	"fmt"
	"log"

	"fastmatch"
	"fastmatch/internal/datagen"
)

func main() {
	rows := flag.Int("rows", 500_000, "synthetic census size in tuples")
	flag.Parse()

	// Synthetic census: countries with clustered income distributions.
	ds, err := datagen.Generate(datagen.Spec{
		Name: "census", Rows: *rows, Seed: 1, Clusters: 9, BlockSize: 256,
		Columns: []datagen.ColumnSpec{
			{Name: "country", Cardinality: 190, Skew: 1.0, ClusterConcentration: 0.5},
			{Name: "income_bracket", Cardinality: 7, Skew: 0.3, ClusterConcentration: 0.4},
			{Name: "occupation", Cardinality: 40, Skew: 0.9, ClusterConcentration: 0.8},
			{Name: "num_children", Cardinality: 8, Skew: 0.8, ClusterConcentration: 0.6},
			{Name: "religion", Cardinality: 12, Skew: 1.1, ClusterConcentration: 0.7},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl := ds.Table
	eng := fastmatch.NewEngine(tbl)
	fmt.Printf("census: %d tuples, %d blocks\n\n", tbl.NumRows(), tbl.NumBlocks())

	// Q1: which countries have income distributions similar to country_0?
	opts := fastmatch.DefaultOptions(tbl.NumRows())
	opts.Params.K = 5
	opts.Params.Epsilon = 0.08
	res, err := eng.Run(
		fastmatch.Query{Z: "country", X: []string{"income_bracket"}},
		fastmatch.Target{Candidate: "country_0"},
		opts,
	)
	if err != nil {
		log.Fatal(err)
	}
	report("Q1: countries with income distributions like country_0", res, tbl.NumRows())

	// Q2-style: occupations whose num_children distribution matches
	// occupation_3's, over a composite (occupation only here) —
	// demonstrating a different Z/X template on the same engine with
	// indexes reused.
	res, err = eng.Run(
		fastmatch.Query{Z: "occupation", X: []string{"num_children"}},
		fastmatch.Target{Candidate: "occupation_3"},
		opts,
	)
	if err != nil {
		log.Fatal(err)
	}
	report("Q2: occupations with family sizes like occupation_3", res, tbl.NumRows())

	// Q3: composite grouping — countries whose joint (income, children)
	// distribution is closest to uniform (Appendix A.1.3).
	optsQ3 := opts
	optsQ3.Params.K = 3
	optsQ3.Params.Epsilon = 0.15
	res, err = eng.Run(
		fastmatch.Query{Z: "country", X: []string{"income_bracket", "num_children"}},
		fastmatch.Target{Uniform: true},
		optsQ3,
	)
	if err != nil {
		log.Fatal(err)
	}
	report("Q3: countries with most-uniform joint (income × children)", res, tbl.NumRows())

	// Q4: a k-range query — "find me between 3 and 8 close matches,
	// whichever splits most cleanly" (Appendix A.2.3).
	optsKR := opts
	optsKR.Params.K = 0
	optsKR.Params.KRange.KMin = 3
	optsKR.Params.KRange.KMax = 8
	res, err = eng.Run(
		fastmatch.Query{Z: "country", X: []string{"income_bracket"}},
		fastmatch.Target{Candidate: "country_1"},
		optsKR,
	)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("Q4: k∈[3,8] matches for country_1 (chose k=%d)", res.Stats.ChosenK),
		res, tbl.NumRows())
}

func report(title string, res *fastmatch.Result, totalRows int) {
	fmt.Println(title)
	fmt.Printf("  sampled %d/%d tuples in %v (stage2 rounds: %d, pruned: %d, blocks skipped: %d)\n",
		res.Stats.TotalSamples(), totalRows, res.Duration.Round(1000),
		res.Stats.Rounds, res.Stats.PrunedCandidates, res.IO.BlocksSkipped)
	for rank, m := range res.TopK {
		fmt.Printf("  %2d. %-16s d=%.4f\n", rank+1, m.Label, m.Distance)
	}
	fmt.Println()
}
