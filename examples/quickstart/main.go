// Command quickstart is the smallest end-to-end FastMatch example: build a
// tiny census-style table by hand, then ask which countries have an income
// distribution most similar to Greece's — the paper's running example
// (Q1 of Section 1).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"fastmatch"
)

func main() {
	// 1. Build a table: one row per person, with country and income
	// bracket. Real deployments load millions of rows (see ReadCSV); the
	// synthetic populations here keep the example self-contained.
	b := fastmatch.NewBuilder(64)
	if _, err := b.AddColumn("country"); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AddColumn("income_bracket"); err != nil {
		log.Fatal(err)
	}

	brackets := []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7"}
	// Per-country income distributions over 7 brackets. Portugal is
	// engineered to resemble Greece; Luxembourg to differ sharply.
	shapes := map[string][]float64{
		"greece":     {5, 9, 12, 9, 5, 3, 1},
		"portugal":   {5, 8, 12, 10, 5, 3, 1},
		"croatia":    {6, 9, 11, 9, 6, 3, 2},
		"luxembourg": {1, 2, 4, 7, 10, 12, 9},
		"norway":     {1, 3, 6, 9, 11, 9, 5},
		"brazil":     {12, 10, 7, 5, 3, 2, 1},
		"japan":      {2, 5, 9, 12, 9, 5, 2},
	}
	for country, shape := range shapes {
		var total float64
		for _, s := range shape {
			total += s
		}
		for i, s := range shape {
			people := int(s / total * 20_000)
			for p := 0; p < people; p++ {
				err := b.AppendRow(map[string]string{
					"country":        country,
					"income_bracket": brackets[i],
				}, nil)
				if err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	// 2. Shuffle so sequential block reads are uniform samples, then build.
	b.Shuffle(7)
	tbl := b.Build()

	// 3. Ask: which countries look most like Greece?
	eng := fastmatch.NewEngine(tbl)
	opts := fastmatch.DefaultOptions(tbl.NumRows())
	opts.Params.K = 3
	opts.Params.Epsilon = 0.05
	res, err := eng.Run(
		fastmatch.Query{Z: "country", X: []string{"income_bracket"}},
		fastmatch.Target{Candidate: "greece"},
		opts,
	)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report. The first match is Greece itself (distance 0); the
	// interesting matches follow.
	fmt.Printf("Top %d countries by income-distribution similarity to greece\n", len(res.TopK))
	fmt.Printf("(executor=%v, sampled %d of %d tuples, %d blocks skipped, %v)\n\n",
		fastmatch.FastMatch, res.Stats.TotalSamples(), tbl.NumRows(),
		res.IO.BlocksSkipped, res.Duration.Round(1000))
	for rank, m := range res.TopK {
		fmt.Printf("%d. %-12s  L1 distance %.4f\n", rank+1, m.Label, m.Distance)
		fmt.Println(sparkline(m.Histogram.Normalized()))
	}
}

// sparkline renders a distribution as ASCII bars.
func sparkline(p []float64) string {
	var sb strings.Builder
	max := 0.0
	for _, v := range p {
		if v > max {
			max = v
		}
	}
	for i, v := range p {
		bar := int(v / max * 30)
		sb.WriteString(fmt.Sprintf("   b%-2d %5.1f%% %s\n", i+1, v*100, strings.Repeat("#", bar)))
	}
	return sb.String()
}
