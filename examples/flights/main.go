// Command flights runs the paper's FLIGHTS queries end to end on the
// synthetic FLIGHTS dataset: find airports whose departure-hour histogram
// matches a busy hub's (flights-q1), then compare all four executors on
// the same query — a miniature of Table 4 — and finish with a SUM query
// over a measure-biased view (Appendix A.1.1).
//
// Run with:
//
//	go run ./examples/flights [-rows 1000000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fastmatch"
	"fastmatch/internal/datagen"
)

func main() {
	rows := flag.Int("rows", 1_000_000, "synthetic flight count")
	flag.Parse()

	ds, err := datagen.Flights(*rows, 11, 256)
	if err != nil {
		log.Fatal(err)
	}
	tbl := ds.Table
	eng := fastmatch.NewEngine(tbl)

	// Use the busiest origin as the target hub ("ORD").
	origin, err := tbl.Column("Origin")
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]int, origin.Cardinality())
	for i := 0; i < tbl.NumRows(); i++ {
		counts[origin.Code(i)]++
	}
	hub, hubCount := 0, 0
	for i, c := range counts {
		if c > hubCount {
			hub, hubCount = i, c
		}
	}
	hubName := origin.Dict.Value(uint32(hub))
	fmt.Printf("flights: %d tuples; busiest origin %q with %d departures\n\n",
		tbl.NumRows(), hubName, hubCount)

	query := fastmatch.Query{Z: "Origin", X: []string{"DepartureHour"}}
	target := fastmatch.Target{Candidate: hubName}

	opts := fastmatch.DefaultOptions(tbl.NumRows())
	opts.Params.K = 10
	opts.Params.Epsilon = 0.08
	opts.Seed = 5

	// flights-q1: airports with departure-hour distributions like the hub.
	res, err := eng.Run(query, target, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q1: top-%d origins matching %s's departure-hour histogram (FastMatch, %v)\n",
		opts.Params.K, hubName, res.Duration.Round(time.Microsecond))
	for rank, m := range res.TopK {
		fmt.Printf("  %2d. %-12s d=%.4f\n", rank+1, m.Label, m.Distance)
	}

	// Mini Table 4: all four executors on the same query.
	fmt.Println("\nexecutor comparison (same query, same guarantees):")
	var scanTime time.Duration
	for _, exec := range []fastmatch.Executor{fastmatch.Scan, fastmatch.ScanMatch, fastmatch.SyncMatch, fastmatch.FastMatch} {
		o := opts
		o.Executor = exec
		r, err := eng.Run(query, target, o)
		if err != nil {
			log.Fatal(err)
		}
		if exec == fastmatch.Scan {
			scanTime = r.Duration
		}
		speedup := float64(scanTime) / float64(r.Duration)
		fmt.Printf("  %-10v %10v  speedup %5.2fx  tuples read %9d  blocks skipped %7d\n",
			exec, r.Duration.Round(time.Microsecond), speedup, r.IO.TuplesRead, r.IO.BlocksSkipped)
	}

	// SUM query via a measure-biased view: which origins have delay-cost
	// mass distributed across hours like the hub? (Appendix A.1.1 — the
	// view converts SUM(Fare-like measure) into COUNT semantics.)
	taxi, err := datagen.Taxi(200_000, 13, 256)
	if err != nil {
		log.Fatal(err)
	}
	view, err := fastmatch.MeasureBiasedView(taxi.Table, "Fare", 400_000, 17)
	if err != nil {
		log.Fatal(err)
	}
	veng := fastmatch.NewEngine(view)
	vopts := fastmatch.DefaultOptions(view.NumRows())
	vopts.Params.K = 5
	vopts.Params.Epsilon = 0.15
	vres, err := veng.Run(
		fastmatch.Query{Z: "Location", X: []string{"HourOfDay"}},
		fastmatch.Target{Uniform: true},
		vopts,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSUM(Fare) by hour, locations with most-uniform fare mass (measure-biased view of %d rows):\n",
		view.NumRows())
	for rank, m := range vres.TopK {
		fmt.Printf("  %2d. %-14s d=%.4f\n", rank+1, m.Label, m.Distance)
	}
}
