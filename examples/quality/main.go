// Command quality demonstrates the answer-quality observability
// subsystem end to end:
//
//  1. Direct engine use — Options.Quality streaming per-round
//     convergence telemetry (estimated-distance margin vs ε, stopping
//     slack, top-k churn) through OnProgress, then the terminal
//     QualityReport with per-match confidence intervals.
//  2. AuditRun — grading the sampled answer against an exact
//     re-execution: strict precision@k, rank displacement, distance
//     error.
//  3. The guarantee boundary — a row-budgeted run comes back flagged
//     Truncated and AuditRun refuses to grade it (it claimed nothing).
//  4. Over HTTP — "quality": true returns the report next to the
//     result, and a shadow-audit sampler (AuditFraction 1) grades the
//     answer off the request path, visible at GET /v1/debug/quality.
//
// Run with:
//
//	go run ./examples/quality
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"fastmatch"
)

func main() {
	tbl := buildTable()
	eng := fastmatch.NewEngine(tbl)
	query := fastmatch.Query{Z: "city", X: []string{"hour"}}

	// --- 1. Watch the run converge, round by round. ---
	fmt.Println("== quality-instrumented run (per-round convergence)")
	opts := fastmatch.DefaultOptions(tbl.NumRows())
	opts.Executor = fastmatch.ScanMatch // deterministic round structure
	opts.Params.K = 3
	opts.Params.Epsilon = 0.02
	opts.Seed = 42
	opts.Quality = true
	opts.OnProgress = func(p fastmatch.Progress) {
		if p.Quality == nil {
			return
		}
		fmt.Printf("  round %-2d  gap=%-8.4f slack=%-8.4f churn=%d pruned=%d\n",
			p.Round, p.Quality.Gap, p.Quality.Slack, p.Quality.Churn, p.Quality.PrunedCandidates)
	}
	res, err := eng.Run(query, fastmatch.Target{Uniform: true}, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.OnProgress = nil

	q := res.Quality
	fmt.Printf("\n  report: rounds=%d termination=%q guarantee_met=%v final_gap=%.4f\n",
		q.Rounds, q.Termination, q.GuaranteeMet, q.FinalGap)
	for i, m := range q.Matches {
		fmt.Printf("    %d. %-10s τ̂=%.4f ± %.4f  (%d samples)\n",
			i+1, m.Label, m.Distance, m.CI, m.Samples)
	}

	// --- 2. Grade the answer against ground truth. ---
	fmt.Println("\n== shadow audit (exact re-execution)")
	plan, err := eng.Prepare(query)
	if err != nil {
		log.Fatal(err)
	}
	target, err := plan.ResolveTarget(fastmatch.Target{Uniform: true}, 0)
	if err != nil {
		log.Fatal(err)
	}
	audit, err := fastmatch.AuditRun(context.Background(), plan, target, res, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  precision@%d=%.2f  guarantee_violations=%d  max_displacement=%d  max_abs_error=%.4f\n",
		audit.K, audit.PrecisionAtK, audit.GuaranteeViolations, audit.MaxDisplacement, audit.MaxAbsError)
	for _, c := range audit.Candidates {
		mark := " "
		if !c.InExactTopK {
			mark = "!"
		}
		fmt.Printf("  %s %-10s approx rank %d (τ̂=%.4f)  exact rank %d (τ=%.4f)\n",
			mark, c.Label, c.ApproxRank, c.ApproxDistance, c.ExactRank, c.ExactDistance)
	}

	// --- 3. Truncated runs claim nothing, and are graded as nothing. ---
	fmt.Println("\n== row-budgeted run: flagged truncated, refused by the auditor")
	bopts := opts
	bopts.RowBudget = int64(tbl.NumRows() / 100)
	bres, err := eng.Run(query, fastmatch.Target{Uniform: true}, bopts)
	if !errors.Is(err, fastmatch.ErrBudgetExhausted) {
		log.Fatalf("expected budget exhaustion, got %v", err)
	}
	fmt.Printf("  partial=%v truncated=%v termination=%q guarantee_met=%v\n",
		bres.Partial, bres.Quality.Truncated, bres.Quality.Termination, bres.Quality.GuaranteeMet)
	if _, err := fastmatch.AuditRun(context.Background(), plan, target, bres, bopts); err != nil {
		fmt.Printf("  auditor: %v\n", err)
	}

	// --- 4. The same machinery behind the HTTP API. ---
	fmt.Println("\n== over HTTP: quality report in the response, shadow audit in the debug ring")
	srv := fastmatch.NewServer(fastmatch.ServerConfig{AuditFraction: 1})
	if err := srv.RegisterTable("taxi", tbl); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{
	  "table": "taxi",
	  "query": {"z": "city", "x": ["hour"]},
	  "target": {"uniform": true},
	  "options": {"k": 3, "executor": "scanmatch", "epsilon": 0.02, "seed": 42},
	  "quality": true
	}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var reply struct {
		Quality *fastmatch.QualityReport `json:"quality"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  response quality: rounds=%d guarantee_met=%v\n",
		reply.Quality.Rounds, reply.Quality.GuaranteeMet)

	// The shadow audit runs off the request path; poll the debug ring.
	for i := 0; i < 100; i++ {
		resp, err := http.Get(ts.URL + "/v1/debug/quality")
		if err != nil {
			log.Fatal(err)
		}
		var ring struct {
			Queries []struct {
				QueryID string           `json:"query_id"`
				Audit   *fastmatch.Audit `json:"audit"`
			} `json:"queries"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if len(ring.Queries) > 0 && ring.Queries[0].Audit != nil {
			a := ring.Queries[0].Audit
			fmt.Printf("  debug ring: query %s audited — precision@%d=%.2f, violations=%d\n",
				ring.Queries[0].QueryID, a.K, a.PrecisionAtK, a.GuaranteeViolations)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("shadow audit never landed in the debug ring")
}

// buildTable synthesizes hourly trip counts for cities with distinct
// diurnal shapes; the uniform target makes "which city is busiest
// around the clock" the question, and the near-ties among flat cities
// give the sampler real work to separate.
func buildTable() *fastmatch.Table {
	b := fastmatch.NewBuilder(128)
	if _, err := b.AddColumn("city"); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AddColumn("hour"); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cities := []string{"nyc", "chicago", "sf", "austin", "miami", "seattle", "boston", "denver"}
	for _, city := range cities {
		peak := rng.Intn(24)
		width := 2 + rng.Intn(6) // wider = flatter = closer to uniform
		for i := 0; i < 40_000; i++ {
			h := (peak + int(rng.NormFloat64()*float64(width)) + 240) % 24
			err := b.AppendRow(map[string]string{
				"city": city, "hour": fmt.Sprintf("h%02d", h),
			}, nil)
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	b.Shuffle(3)
	return b.Build()
}
