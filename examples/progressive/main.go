// Command progressive demonstrates the progressive, cancellable query
// API end to end:
//
//  1. Direct engine use — Options.OnProgress streaming the top-k as it
//     refines round by round, then a row-budgeted run returning a
//     best-effort partial answer with ErrBudgetExhausted.
//  2. Over HTTP — POST /v1/query/stream rendering NDJSON progress
//     frames followed by the terminal result, against a throttled
//     (simulated slow-storage) copy of the same table so the
//     refinement is visible.
//
// Run with:
//
//	go run ./examples/progressive
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"fastmatch"
)

func main() {
	tbl := buildTable()
	eng := fastmatch.NewEngine(tbl)
	query := fastmatch.Query{Z: "city", X: []string{"hour"}}
	target := fastmatch.Target{Uniform: true}

	// --- 1a. Watch HistSim refine its answer round by round. ---
	fmt.Println("== progressive run (OnProgress)")
	opts := fastmatch.DefaultOptions(tbl.NumRows())
	opts.Executor = fastmatch.ScanMatch // deterministic round structure
	opts.Params.K = 3
	opts.Params.Epsilon = 0.02
	opts.Seed = 42
	opts.OnProgress = func(p fastmatch.Progress) {
		best := "-"
		if len(p.TopK) > 0 {
			best = fmt.Sprintf("%s (τ=%.4f)", p.TopK[0].Label, p.TopK[0].Distance)
		}
		fmt.Printf("  %-7s round %-2d  rows=%-8d blocks=%-5d best=%s\n",
			p.Phase, p.Round, p.IO.TuplesRead, p.IO.BlocksRead, best)
	}
	res, err := eng.Run(query, target, opts)
	if err != nil {
		log.Fatal(err)
	}
	printTopK("final answer", res)

	// --- 1b. A row budget returns the best effort seen so far. ---
	fmt.Println("\n== row-budgeted run (best-effort partial)")
	opts.OnProgress = nil
	opts.RowBudget = int64(tbl.NumRows() / 50)
	res, err = eng.Run(query, target, opts)
	switch {
	case errors.Is(err, fastmatch.ErrBudgetExhausted):
		fmt.Printf("  stopped after %d rows (budget %d), partial=%v\n",
			res.IO.TuplesRead, opts.RowBudget, res.Partial)
		printTopK("partial answer", res)
	case err != nil:
		log.Fatal(err)
	default:
		printTopK("answer inside budget", res)
	}
	opts.RowBudget = 0

	// --- 1c. Cancellation mid-run. ---
	fmt.Println("\n== canceled run")
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	opts.OnProgress = func(p fastmatch.Progress) {
		if calls++; calls == 1 {
			cancel() // abandon after the first interim answer
		}
	}
	res, err = eng.RunContext(ctx, query, target, opts)
	cancel()
	if errors.Is(err, fastmatch.ErrCanceled) && res != nil {
		fmt.Printf("  canceled after %d rows; best-effort top-1: %s\n",
			res.IO.TuplesRead, res.TopK[0].Label)
	}
	opts.OnProgress = nil

	// --- 2. The same contract over HTTP, against slow storage. ---
	fmt.Println("\n== NDJSON streaming over HTTP (throttled storage)")
	srv := fastmatch.NewServer(fastmatch.ServerConfig{})
	// A few tens of µs per block ≈ a slow disk; makes refinement visible.
	if err := srv.RegisterTable("taxi", fastmatch.NewThrottledReader(tbl, 20*time.Microsecond)); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{
	  "table": "taxi",
	  "query": {"z": "city", "x": ["hour"]},
	  "target": {"uniform": true},
	  "options": {"k": 3, "executor": "scanmatch", "epsilon": 0.02, "seed": 42}
	}`
	resp, err := http.Post(ts.URL+"/v1/query/stream", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var frame fastmatch.StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			log.Fatalf("%v in %s", err, sc.Text())
		}
		switch frame.Type {
		case "progress":
			best := "-"
			if len(frame.Progress.TopK) > 0 {
				best = frame.Progress.TopK[0].Label
			}
			fmt.Printf("  frame: %-7s round %-2d rows=%-8d best=%s\n",
				frame.Progress.Phase, frame.Progress.Round,
				frame.Progress.IO.TuplesRead, best)
		case "result":
			var payload struct {
				TopK []struct {
					Label    string  `json:"label"`
					Distance float64 `json:"distance"`
				} `json:"topk"`
				Partial bool `json:"partial"`
			}
			if err := json.Unmarshal(frame.Result, &payload); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  result (partial=%v, %.1fms):\n", payload.Partial,
				float64(frame.DurationNS)/1e6)
			for i, m := range payload.TopK {
				fmt.Printf("    %d. %-10s τ=%.4f\n", i+1, m.Label, m.Distance)
			}
		case "error":
			log.Fatalf("stream error: %s", frame.Error)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// buildTable synthesizes hourly trip counts for cities with distinct
// diurnal shapes; the uniform target makes "which city is busiest
// around the clock" the question.
func buildTable() *fastmatch.Table {
	b := fastmatch.NewBuilder(128)
	if _, err := b.AddColumn("city"); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AddColumn("hour"); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cities := []string{"nyc", "chicago", "sf", "austin", "miami", "seattle", "boston", "denver"}
	for _, city := range cities {
		peak := rng.Intn(24)
		width := 2 + rng.Intn(6) // wider = flatter = closer to uniform
		for i := 0; i < 40_000; i++ {
			h := (peak + int(rng.NormFloat64()*float64(width)) + 240) % 24
			err := b.AppendRow(map[string]string{
				"city": city, "hour": fmt.Sprintf("h%02d", h),
			}, nil)
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	b.Shuffle(3)
	return b.Build()
}

func printTopK(label string, res *fastmatch.Result) {
	fmt.Printf("  %s (exact=%v, partial=%v, rows=%d):\n", label, res.Exact, res.Partial, res.IO.TuplesRead)
	for i, m := range res.TopK {
		fmt.Printf("    %d. %-10s τ=%.4f\n", i+1, m.Label, m.Distance)
	}
}
