// Command serverclient shows the serving subsystem end to end in one
// process: build the quickstart census table, register it with an
// embedded fastmatch.Server, and query it over real HTTP — including a
// repeat of the same request to demonstrate the result cache.
//
// Run with:
//
//	go run ./examples/serverclient
//
// For a standalone daemon over files on disk, see cmd/fastmatchd.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"fastmatch"
)

func main() {
	// 1. Build the quickstart table: per-country income distributions.
	b := fastmatch.NewBuilder(64)
	if _, err := b.AddColumn("country"); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AddColumn("income_bracket"); err != nil {
		log.Fatal(err)
	}
	brackets := []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7"}
	shapes := map[string][]float64{
		"greece":     {5, 9, 12, 9, 5, 3, 1},
		"portugal":   {5, 8, 12, 10, 5, 3, 1},
		"croatia":    {6, 9, 11, 9, 6, 3, 2},
		"luxembourg": {1, 2, 4, 7, 10, 12, 9},
		"norway":     {1, 3, 6, 9, 11, 9, 5},
		"brazil":     {12, 10, 7, 5, 3, 2, 1},
		"japan":      {2, 5, 9, 12, 9, 5, 2},
	}
	for country, shape := range shapes {
		var total float64
		for _, s := range shape {
			total += s
		}
		for i, s := range shape {
			for p := 0; p < int(s/total*20_000); p++ {
				err := b.AppendRow(map[string]string{
					"country": country, "income_bracket": brackets[i],
				}, nil)
				if err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	b.Shuffle(7)

	// 2. Register the table with an embedded server and serve it.
	srv := fastmatch.NewServer(fastmatch.ServerConfig{})
	if err := srv.RegisterTable("census", b.Build()); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving on %s\n\n", ts.URL)

	// 3. Ask over HTTP: which countries look most like Greece?
	request := `{
	  "table": "census",
	  "query": {"z": "country", "x": ["income_bracket"]},
	  "target": {"candidate": "greece"},
	  "options": {"k": 3, "epsilon": 0.05, "seed": 1}
	}`
	for attempt := 1; attempt <= 2; attempt++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			bytes.NewReader([]byte(request)))
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		var reply struct {
			Cached     bool  `json:"cached"`
			DurationNS int64 `json:"duration_ns"`
			Result     struct {
				TopK []struct {
					Label    string  `json:"label"`
					Distance float64 `json:"distance"`
				} `json:"topk"`
			} `json:"result"`
		}
		if err := json.Unmarshal(body, &reply); err != nil {
			log.Fatalf("%v in %s", err, body)
		}
		fmt.Printf("request %d (cached=%v, %.2fms):\n", attempt, reply.Cached,
			float64(reply.DurationNS)/1e6)
		for rank, m := range reply.Result.TopK {
			fmt.Printf("  %d. %-12s L1 distance %.4f\n", rank+1, m.Label, m.Distance)
		}
	}

	// 4. Show the serving stats the daemon exposes on /v1/stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	stats, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, stats, "", "  "); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/v1/stats:\n%s\n", pretty.Bytes())
}
