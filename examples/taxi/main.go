// Command taxi reproduces the taxi exploration scenario of Example 2
// (Q4/Q5): Bob notices a Manhattan location whose pickup-time histogram
// skews toward 3–5 am, and asks which other locations share that
// distribution. The candidate attribute has thousands of values, most of
// them nearly empty — the stage-1 pruning stress test of the paper's TAXI
// dataset — so the example also prints what pruning did.
//
// Run with:
//
//	go run ./examples/taxi [-rows 800000]
package main

import (
	"flag"
	"fmt"
	"log"

	"fastmatch"
	"fastmatch/internal/datagen"
)

func main() {
	rows := flag.Int("rows", 800_000, "synthetic trip count")
	flag.Parse()

	ds, err := datagen.Taxi(*rows, 3, 256)
	if err != nil {
		log.Fatal(err)
	}
	tbl := ds.Table
	eng := fastmatch.NewEngine(tbl)

	loc, err := tbl.Column("Location")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taxi: %d trips over %d locations\n", tbl.NumRows(), loc.Cardinality())

	// Bob's "nightclub" target: a pickup-hour distribution concentrated in
	// the 3–5 am range.
	nightclub := make([]float64, 24)
	for h := range nightclub {
		nightclub[h] = 1
	}
	nightclub[3], nightclub[4], nightclub[5] = 12, 16, 10
	nightclub[22], nightclub[23] = 4, 6

	opts := fastmatch.DefaultOptions(tbl.NumRows())
	opts.Params.K = 8
	opts.Params.Epsilon = 0.12
	// Scale σ and the stage-1 sample to this dataset's size so the rarity
	// test has power (the library default is tuned for paper-scale data).
	opts.Params.Sigma = 0.002
	opts.Params.Stage1Samples = tbl.NumRows() / 10
	opts.Seed = 99
	res, err := eng.Run(
		fastmatch.Query{Z: "Location", X: []string{"HourOfDay"}},
		fastmatch.Target{Counts: nightclub},
		opts,
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nQ4: locations with late-night pickup distributions (ε=%.2f, δ=%.2f, σ=%.4f)\n",
		opts.Params.Epsilon, opts.Params.Delta, opts.Params.Sigma)
	fmt.Printf("  stage 1 pruned %d of %d locations as too rare (σ threshold)\n",
		res.Stats.PrunedCandidates, loc.Cardinality())
	fmt.Printf("  sampled %d/%d tuples in %v; %d blocks skipped by AnyActive\n\n",
		res.Stats.TotalSamples(), tbl.NumRows(), res.Duration.Round(1000), res.IO.BlocksSkipped)
	for rank, m := range res.TopK {
		night := nightShare(m)
		fmt.Printf("%2d. %-14s d=%.4f  %4.1f%% of pickups between 3am and 5am\n",
			rank+1, m.Label, m.Distance, night*100)
	}

	// Q5 flavour: compare against the same query with the L2 metric to
	// see whether the metric choice changes the answer (§5.4's Table 5
	// analysis).
	optsL2 := opts
	optsL2.Params.Metric = fastmatch.MetricL2
	optsL2.Params.Epsilon = 0.08
	resL2, err := eng.Run(
		fastmatch.Query{Z: "Location", X: []string{"HourOfDay"}},
		fastmatch.Target{Counts: nightclub},
		optsL2,
	)
	if err != nil {
		log.Fatal(err)
	}
	inL1 := map[string]bool{}
	for _, m := range res.TopK {
		inL1[m.Label] = true
	}
	common := 0
	for _, m := range resL2.TopK {
		if inL1[m.Label] {
			common++
		}
	}
	fmt.Printf("\nL1 vs L2 agreement on the top-%d: %d/%d locations in common\n",
		opts.Params.K, common, opts.Params.K)
}

// nightShare computes the 3–5am mass of a match's histogram.
func nightShare(m fastmatch.Match) float64 {
	p := m.Histogram.Normalized()
	return p[3] + p[4] + p[5]
}
