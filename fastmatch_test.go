package fastmatch_test

import (
	"testing"

	"fastmatch"
	"fastmatch/internal/datagen"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	// Exercise the full public surface: build a table by hand, query it
	// with every executor.
	b := fastmatch.NewBuilder(32)
	if _, err := b.AddColumn("country"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddColumn("bracket"); err != nil {
		t.Fatal(err)
	}
	countries := []string{"greece", "italy", "spain", "norway", "japan"}
	// greece/italy share a shape; others differ.
	shape := map[string][]int{
		"greece": {5, 3, 1}, "italy": {5, 3, 2}, "spain": {1, 3, 5},
		"norway": {3, 3, 3}, "japan": {1, 1, 8},
	}
	brackets := []string{"low", "mid", "high"}
	for _, c := range countries {
		for bi, reps := range shape[c] {
			for r := 0; r < reps*40; r++ {
				err := b.AppendRow(map[string]string{"country": c, "bracket": brackets[bi]}, nil)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	b.Shuffle(11)
	tbl := b.Build()

	opts := fastmatch.DefaultOptions(tbl.NumRows())
	opts.Params.K = 2
	opts.Params.Epsilon = 0.05
	opts.Params.Sigma = 0
	opts.Params.Stage1Samples = 0
	for _, exec := range []fastmatch.Executor{fastmatch.Scan, fastmatch.ScanMatch, fastmatch.SyncMatch, fastmatch.FastMatch} {
		opts.Executor = exec
		res, err := fastmatch.NewEngine(tbl).Run(
			fastmatch.Query{Z: "country", X: []string{"bracket"}},
			fastmatch.Target{Candidate: "greece"},
			opts,
		)
		if err != nil {
			t.Fatalf("%v: %v", exec, err)
		}
		if len(res.TopK) != 2 {
			t.Fatalf("%v: topk size %d", exec, len(res.TopK))
		}
		if res.TopK[0].Label != "greece" {
			t.Fatalf("%v: target not first: %q", exec, res.TopK[0].Label)
		}
		if res.TopK[1].Label != "italy" {
			t.Fatalf("%v: second match %q, want italy", exec, res.TopK[1].Label)
		}
	}
}

func TestDefaultOptionsScaling(t *testing.T) {
	small := fastmatch.DefaultOptions(100)
	if small.Params.Stage1Samples != 2000 {
		t.Fatalf("small m = %d", small.Params.Stage1Samples)
	}
	mid := fastmatch.DefaultOptions(1_000_000)
	if mid.Params.Stage1Samples != 50_000 {
		t.Fatalf("mid m = %d", mid.Params.Stage1Samples)
	}
	big := fastmatch.DefaultOptions(600_000_000)
	if big.Params.Stage1Samples != 500_000 {
		t.Fatalf("big m = %d (paper cap)", big.Params.Stage1Samples)
	}
	if big.Params.Epsilon != 0.04 || big.Params.Delta != 0.01 || big.Params.Sigma != 0.0008 {
		t.Fatal("paper defaults wrong")
	}
	if big.Executor != fastmatch.FastMatch || big.Lookahead != 1024 {
		t.Fatal("default executor/lookahead wrong")
	}
}

func TestPublicAPIWithGeneratedData(t *testing.T) {
	ds, err := datagen.Flights(20_000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastmatch.DefaultOptions(20_000)
	opts.Params.K = 5
	opts.Params.Epsilon = 0.1
	opts.Seed = 4
	res, err := fastmatch.NewEngine(ds.Table).Run(
		fastmatch.Query{Z: "Origin", X: []string{"DepartureHour"}},
		fastmatch.Target{Uniform: true},
		opts,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 5 {
		t.Fatalf("topk size %d", len(res.TopK))
	}
	if len(res.GroupLabels) != 24 {
		t.Fatalf("group labels %d", len(res.GroupLabels))
	}
}

func TestNewHistogramAndBinner(t *testing.T) {
	h := fastmatch.NewHistogram([]float64{1, 2, 3})
	if h.Total() != 6 {
		t.Fatalf("Total = %g", h.Total())
	}
	bn, err := fastmatch.NewUniformBinner(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if bn.NumBins() != 5 {
		t.Fatalf("bins = %d", bn.NumBins())
	}
}
