// BenchmarkColdStart measures time-to-first-query for every way of
// loading a dataset: CSV re-parse (with the mandatory shuffle), the v1
// unaligned snapshot, the v2 aligned snapshot (both materializing on the
// heap), and the zero-copy mmap open of a v2 snapshot. Baseline numbers
// live in BENCH_mmap.json. The mmap open still scales with rows — it
// validates every code against its dictionary in one sequential pass —
// but with a far smaller constant than materializing (no decode, no
// allocation, measure pages untouched); the acceptance floor is ≥ 10x
// over CSV at 1M rows.
package fastmatch_test

import (
	"fmt"
	"os"
	"testing"

	"fastmatch/internal/colstore"
	"fastmatch/internal/datagen"
)

func writeColdStartFixtures(b *testing.B, rows int) (csvPath, v1Path, v2Path string) {
	b.Helper()
	dir := b.TempDir()
	ds, err := datagen.ByName("flights", rows, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	csvPath = fmt.Sprintf("%s/flights_%d.csv", dir, rows)
	f, err := os.Create(csvPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := colstore.WriteCSV(ds.Table, f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	v1Path = fmt.Sprintf("%s/flights_%d.v1.fms", dir, rows)
	if err := colstore.WriteSnapshotFileVersion(ds.Table, v1Path, colstore.SnapshotV1); err != nil {
		b.Fatal(err)
	}
	v2Path = fmt.Sprintf("%s/flights_%d.v2.fms", dir, rows)
	if err := colstore.WriteSnapshotFileVersion(ds.Table, v2Path, colstore.SnapshotV2); err != nil {
		b.Fatal(err)
	}
	return csvPath, v1Path, v2Path
}

func BenchmarkColdStart(b *testing.B) {
	for _, rows := range []int{100_000, 1_000_000} {
		csvPath, v1Path, v2Path := writeColdStartFixtures(b, rows)
		b.Run(fmt.Sprintf("csv/rows=%d", rows), func(b *testing.B) {
			seed := int64(1)
			for i := 0; i < b.N; i++ {
				f, err := os.Open(csvPath)
				if err != nil {
					b.Fatal(err)
				}
				tbl, err := colstore.ReadCSV(f, colstore.CSVOptions{ShuffleSeed: &seed, DropInvalid: true})
				f.Close()
				if err != nil {
					b.Fatal(err)
				}
				if tbl.NumRows() != rows {
					b.Fatalf("parsed %d rows", tbl.NumRows())
				}
			}
		})
		b.Run(fmt.Sprintf("snapshotV1/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := colstore.ReadSnapshotFile(v1Path); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("snapshotV2/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := colstore.ReadSnapshotFile(v2Path); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mmap/rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mt, err := colstore.OpenMmapFile(v2Path)
				if err != nil {
					b.Fatal(err)
				}
				if mt.NumRows() != rows {
					b.Fatalf("mapped %d rows", mt.NumRows())
				}
				mt.Close()
			}
		})
	}
}
